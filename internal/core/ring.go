package core

// Bounded lock-free SPSC rings: the dispatcher→shard hand-off. Each shard
// owns one ring whose slots carry pre-parsed entry batches plus a payload
// arena. All slot storage is allocated once when the ring is built and
// recycled in place forever after — no sync.Pool round-trips, no per-batch
// reallocation, so a steady packet rate moves zero bytes through the
// allocator on the dispatch path (the PR 2 batched-channel design paid ~4×
// byte amplification exactly here).
//
// The synchronization is the classic single-producer/single-consumer ring:
// a head index advanced only by the producer and a tail index advanced
// only by the consumer, each on its own cache line so the two sides never
// false-share. Both sides spin briefly (yielding to the scheduler, which
// on a saturated machine is the fast path) and then park on a buffered
// wake channel, with the usual set-flag/recheck/sleep protocol so a wake
// is never lost.

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/flows"
	"repro/internal/layers"
)

// Entry kinds carried by ring slots.
const (
	entryFlow   uint8 = iota // pre-routed flow packet
	entryDNS                 // UDP/53 payload
	entryExpire              // idle-expiry command for one flow (key)
)

// shardEntry is one pre-parsed unit of shard work. The dispatcher has
// already parsed the frame, extracted and oriented the flow key, and
// decided the direction, so the shard touches only its own flow table and
// resolver — no re-parse, no re-orient. Entries live in slot arenas that
// are recycled on release, so a *shardEntry must never outlive the batch
// it was delivered in.
//
//dnhunter:slab
type shardEntry struct {
	at  time.Duration
	key flows.Key // entryFlow/entryExpire: oriented flow key; entryDNS: ClientIP holds the attribution client (packet DstIP)
	// hash is the key's hash under the engine's shared seed
	// (entryFlow/entryExpire): computed once by the dispatcher's tracker,
	// consumed by the shard table via OrientedPacket.Hash / ExpireFlow.
	hash uint64
	// payOff/payLen locate the payload copy in the slot arena.
	payOff, payLen uint32
	kind           uint8
	c2s            bool // entryFlow: packet direction under key's orientation
	tcp            bool // entryFlow: transport is TCP
	flags          layers.TCPFlags
}

// ringSlot is one batch in flight: entries plus the arena holding their
// payload copies. Capacity is fixed at ring construction; buf may grow
// once to fit an oversized payload and then stays at that size.
type ringSlot struct {
	entries []shardEntry
	buf     []byte
}

// payload returns e's payload bytes inside s, nil when empty.
func (s *ringSlot) payload(e *shardEntry) []byte {
	if e.payLen == 0 {
		return nil
	}
	return s.buf[e.payOff : e.payOff+e.payLen]
}

// Spin budgets before parking. Each spin is a runtime.Gosched, which on a
// busy box hands the quantum straight to the peer goroutine — usually all
// that is needed. Parking beyond that keeps an idle ring from burning a
// core (a vantage stalled on the merge clock, a consumer waiting at EOF).
const (
	ringProducerSpins = 64
	ringConsumerSpins = 64
)

// cacheLinePad separates the producer- and consumer-owned indices so the
// two sides never invalidate each other's cache line.
type cacheLinePad [64]byte

// spscRing is the bounded single-producer/single-consumer slot ring.
// Exactly one goroutine may call producer methods (slot, publish, close)
// and exactly one may call consumer methods (consume, release).
//
//dnhunter:hotatomic
type spscRing struct {
	slots []ringSlot
	mask  uint64

	_    cacheLinePad
	head atomic.Uint64 // slots published; advanced only by the producer
	_    cacheLinePad
	tail atomic.Uint64 // slots released; advanced only by the consumer
	_    cacheLinePad

	closed     atomic.Bool
	prodParked atomic.Bool
	consParked atomic.Bool
	prodWake   chan struct{}
	consWake   chan struct{}

	// acquired tracks whether the producer's current fill slot has been
	// claimed (waited free and reset). batch/bufCap size slot storage on
	// first use. Producer-only state.
	acquired bool
	batch    int
	bufCap   int
}

// newRing builds a ring of `depth` slots (rounded up to a power of two),
// each holding up to batch entries and an arena of bufCap payload bytes.
// Slot storage is allocated on a slot's first use — a short trace that
// never wraps the ring only pays for the slots it touches — and recycled
// in place forever after.
func newRing(depth, batch, bufCap int) *spscRing {
	if depth < 2 {
		depth = 2
	}
	size := 1
	for size < depth {
		size <<= 1
	}
	return &spscRing{
		slots:    make([]ringSlot, size),
		mask:     uint64(size - 1),
		batch:    batch,
		bufCap:   bufCap,
		prodWake: make(chan struct{}, 1),
		consWake: make(chan struct{}, 1),
	}
}

// claim resets and acquires the fill slot at head position h. The caller
// has verified the slot is free (consumer released it).
func (r *spscRing) claim(h uint64) *ringSlot {
	s := &r.slots[h&r.mask]
	if s.entries == nil {
		//dnhunter:alloc-ok one-time lazy slot init; storage is recycled in place forever after
		s.entries = make([]shardEntry, 0, r.batch)
		//dnhunter:alloc-ok one-time lazy slot init; storage is recycled in place forever after
		s.buf = make([]byte, 0, r.bufCap)
	}
	s.entries = s.entries[:0]
	s.buf = s.buf[:0]
	r.acquired = true
	return s
}

// slot returns the producer's current fill slot, blocking until the
// consumer has freed it on wraparound. The slot is reset on first use
// after acquisition.
func (r *spscRing) slot() *ringSlot {
	h := r.head.Load()
	if !r.acquired {
		size := uint64(len(r.slots))
		for spins := 0; h-r.tail.Load() >= size; {
			if spins < ringProducerSpins {
				spins++
				runtime.Gosched()
				continue
			}
			r.prodParked.Store(true)
			if h-r.tail.Load() < size {
				r.prodParked.Store(false)
				break
			}
			<-r.prodWake
			r.prodParked.Store(false)
			spins = 0
		}
		return r.claim(h)
	}
	return &r.slots[h&r.mask]
}

// trySlot is slot without the wraparound wait: ok=false when the ring is
// full and no fill slot is currently acquired. The overload-shedding
// dispatch path uses it to drop instead of blocking the reader when a
// shard backs up.
func (r *spscRing) trySlot() (*ringSlot, bool) {
	h := r.head.Load()
	if !r.acquired {
		if h-r.tail.Load() >= uint64(len(r.slots)) {
			return nil, false
		}
		return r.claim(h), true
	}
	return &r.slots[h&r.mask], true
}

// depth reports the number of published-but-unreleased slots, 0 to
// len(slots). Safe to call from any goroutine (a metrics gauge): it
// touches only the atomic indices, not the producer-owned fill state.
func (r *spscRing) depth() int {
	return int(r.head.Load() - r.tail.Load())
}

// publish hands the current fill slot to the consumer. A no-op when the
// slot is empty or unacquired.
func (r *spscRing) publish() {
	if !r.acquired {
		return
	}
	if len(r.slots[r.head.Load()&r.mask].entries) == 0 {
		return
	}
	r.acquired = false
	r.head.Add(1)
	r.wakeConsumer()
}

// close marks the stream finished (after a final publish) and wakes the
// consumer so it can observe the close. Producer side only.
func (r *spscRing) close() {
	r.closed.Store(true)
	r.wakeConsumer()
}

func (r *spscRing) wakeConsumer() {
	if r.consParked.Load() {
		select {
		case r.consWake <- struct{}{}:
		default:
		}
	}
}

// consume returns the next published slot, blocking until one is
// available. It returns ok=false once the ring is closed and drained.
// The slot stays valid until release.
func (r *spscRing) consume() (*ringSlot, bool) {
	t := r.tail.Load()
	for spins := 0; ; {
		if r.head.Load() > t {
			return &r.slots[t&r.mask], true
		}
		if r.closed.Load() {
			// Re-check after observing the close: the producer's final
			// publish happens before close, but our first head load may
			// predate it.
			if r.head.Load() > t {
				return &r.slots[t&r.mask], true
			}
			return nil, false
		}
		if spins < ringConsumerSpins {
			spins++
			runtime.Gosched()
			continue
		}
		r.consParked.Store(true)
		if r.head.Load() > t || r.closed.Load() {
			r.consParked.Store(false)
			continue
		}
		<-r.consWake
		r.consParked.Store(false)
		spins = 0
	}
}

// release returns the consumed slot to the producer.
func (r *spscRing) release() {
	r.tail.Add(1)
	if r.prodParked.Load() {
		select {
		case r.prodWake <- struct{}{}:
		default:
		}
	}
}
