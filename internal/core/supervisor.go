package core

// Serve-mode source supervision: a live capture feed fails in two very
// different ways. Transient failures — an exporter hiccup, a short read,
// a capture ring overrun — deserve a backoff and another try; fatal ones
// (a closed file, a parse-impossible stream) deserve a clean shutdown.
// The supervisor sits between the drain wrapper and the real source,
// classifies every read error, and restarts the source (optionally
// reopening it) under an exponential-backoff-with-deterministic-jitter
// policy bounded by an error budget. Everything it does is observable:
// classified error counters, restart counts, and the remaining budget all
// surface through ServeMetrics onto /metrics, and any restart marks the
// server degraded on /healthz.

import (
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"repro/internal/netio"
)

// RestartPolicy configures serve-mode source supervision
// (ServeConfig.Restart). The zero value of each field selects a sensible
// default; the zero policy as a whole restarts up to 8 times with
// 50ms–5s backoff.
type RestartPolicy struct {
	// Classify reports whether err is transient (restart) rather than
	// fatal (fail the run). nil means DefaultClassify.
	Classify func(error) bool
	// MaxRestarts is the error budget: transient failures beyond it
	// become fatal. Zero or negative means 8.
	MaxRestarts int
	// BaseBackoff is the first retry's nominal delay, doubling per
	// consecutive restart up to MaxBackoff. Defaults: 50ms and 5s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed drives the deterministic backoff jitter (each delay lands in
	// [d/2, d) of the nominal doubling). Zero means 1. Restart timing —
	// like every fault path — replays exactly from its seed.
	Seed uint64
	// Reopen, when set, replaces the source after each transient failure
	// (e.g. reconnect to an exporter). Its error is fatal. When nil the
	// existing source is simply read again.
	Reopen func() (netio.PacketSource, error)
}

// withDefaults resolves the zero-value fields.
func (p RestartPolicy) withDefaults() RestartPolicy {
	if p.Classify == nil {
		p.Classify = DefaultClassify
	}
	if p.MaxRestarts <= 0 {
		p.MaxRestarts = 8
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = 50 * time.Millisecond
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = 5 * time.Second
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	return p
}

// DefaultClassify is the default transient-vs-fatal split: an error
// advertising Transient() bool (the convention internal/faults.Transient
// marks) answers for itself; io.ErrUnexpectedEOF — a feed dying
// mid-record — is transient; everything else is fatal. io.EOF never gets
// here (end of stream is not a failure).
func DefaultClassify(err error) bool {
	var t interface{ Transient() bool }
	if errors.As(err, &t) {
		return t.Transient()
	}
	return errors.Is(err, io.ErrUnexpectedEOF)
}

// supervisedSource wraps a packet source with the restart policy. It is
// read from the single engine reader goroutine (like any source), so its
// bookkeeping needs no locking; only the metrics it publishes are shared.
type supervisedSource struct {
	src   netio.PacketSource
	fetch blockFetcher
	ref   *netio.RefAdapter
	pol   RestartPolicy
	m     *ServeMetrics
	// stop is the drain signal shared with the drainSource above it:
	// during a drain the supervisor gives up immediately (reporting EOF)
	// instead of sleeping out a backoff.
	stop *atomic.Bool
	rng  uint64
	// pending defers recovery of an error that arrived alongside a
	// partial block: the packets are delivered first, the restart happens
	// at the next read call, and no input is lost.
	pending  error
	restarts int
}

func newSupervisedSource(src netio.PacketSource, pol RestartPolicy, m *ServeMetrics) *supervisedSource {
	pol = pol.withDefaults()
	s := &supervisedSource{src: src, pol: pol, m: m, rng: pol.Seed}
	s.rebind()
	return s
}

// rebind refreshes the read adapters after the source is (re)opened.
func (s *supervisedSource) rebind() {
	s.fetch = newBlockFetcher(s.src)
	s.ref = netio.NewRefAdapter(s.src, nil)
}

func (s *supervisedSource) draining() bool { return s.stop != nil && s.stop.Load() }

// recover handles one non-EOF read error: classify, count, back off,
// optionally reopen. It returns nil when the caller should retry the
// read, io.EOF when a drain interrupted recovery, and a terminal error
// otherwise.
func (s *supervisedSource) recover(err error) error {
	if s.draining() {
		return io.EOF
	}
	if !s.pol.Classify(err) {
		s.m.faultFatal.Add(1)
		return fmt.Errorf("core: source failed (fatal): %w", err)
	}
	if s.restarts >= s.pol.MaxRestarts {
		s.m.faultFatal.Add(1)
		return fmt.Errorf("core: source error budget exhausted after %d restarts: %w", s.restarts, err)
	}
	s.restarts++
	s.m.faultTransient.Add(1)
	s.m.restarts.Add(1)
	s.m.degraded.Store(true)
	s.sleep(s.backoff(s.restarts))
	if s.draining() {
		return io.EOF
	}
	if s.pol.Reopen != nil {
		nsrc, oerr := s.pol.Reopen()
		if oerr != nil {
			s.m.faultFatal.Add(1)
			return fmt.Errorf("core: reopening source after restart %d: %w", s.restarts, oerr)
		}
		s.src = nsrc
		s.rebind()
	}
	return nil
}

// backoff computes the nth restart's delay: BaseBackoff doubling per
// attempt, capped at MaxBackoff, jittered into [d/2, d) by a
// deterministic seeded generator (decorrelated restarts without
// irreproducible timing).
func (s *supervisedSource) backoff(attempt int) time.Duration {
	d := s.pol.MaxBackoff
	if shift := attempt - 1; shift < 30 {
		if b := s.pol.BaseBackoff << shift; b < d {
			d = b
		}
	}
	s.rng = mix64(s.rng + 0x9e3779b97f4a7c15)
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + time.Duration(s.rng%uint64(half))
}

// sleep waits d, polling the drain signal so a stop never waits out a
// long backoff.
func (s *supervisedSource) sleep(d time.Duration) {
	const slice = 5 * time.Millisecond
	for d > 0 {
		if s.draining() {
			return
		}
		step := d
		if step > slice {
			step = slice
		}
		time.Sleep(step)
		d -= step
	}
}

// Next implements netio.PacketSource.
func (s *supervisedSource) Next() (netio.Packet, error) {
	for {
		if err := s.takePending(); err != nil {
			return netio.Packet{}, err
		}
		pkt, err := s.src.Next()
		if err == nil || errors.Is(err, io.EOF) {
			return pkt, err
		}
		if rerr := s.recover(err); rerr != nil {
			return netio.Packet{}, rerr
		}
	}
}

// takePending runs deferred recovery from a previous partial delivery.
func (s *supervisedSource) takePending() error {
	if s.pending == nil {
		return nil
	}
	err := s.pending
	s.pending = nil
	return s.recover(err)
}

// ReadBlock implements netio.BlockSource.
func (s *supervisedSource) ReadBlock(dst []netio.Packet) (int, error) {
	for {
		if err := s.takePending(); err != nil {
			return 0, err
		}
		n, err := s.fetch.read(dst)
		if err == nil || errors.Is(err, io.EOF) {
			return n, err
		}
		if n > 0 {
			// Deliver the partial block now; recover on the next call.
			s.pending = err
			return n, nil
		}
		if rerr := s.recover(err); rerr != nil {
			return 0, rerr
		}
	}
}

// ReadBlockRef implements netio.BlockRefSource, so supervision keeps the
// engine's zero-copy dispatch path.
func (s *supervisedSource) ReadBlockRef(dst []netio.Packet) (int, *netio.Block, error) {
	for {
		if err := s.takePending(); err != nil {
			return 0, nil, err
		}
		n, blk, err := s.ref.ReadBlockRef(dst)
		if err == nil || errors.Is(err, io.EOF) {
			return n, blk, err
		}
		if n > 0 {
			s.pending = err
			return n, blk, nil
		}
		if blk != nil {
			// Defensive: an errored empty read must not leak its handle.
			blk.Release(1)
		}
		if rerr := s.recover(err); rerr != nil {
			return 0, nil, rerr
		}
	}
}

var (
	_ netio.PacketSource   = (*supervisedSource)(nil)
	_ netio.BlockSource    = (*supervisedSource)(nil)
	_ netio.BlockRefSource = (*supervisedSource)(nil)
)
