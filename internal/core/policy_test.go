package core

import "testing"

func TestPolicyFirstMatchWins(t *testing.T) {
	p := NewPolicy(
		Rule{Pattern: "mail.google.com", Action: ActionPrioritize},
		Rule{Pattern: "google.com", Action: ActionDeprioritize},
	)
	if a := p.Decide("mail.google.com"); a != ActionPrioritize {
		t.Fatalf("mail = %v", a)
	}
	if a := p.Decide("smtp.mail.google.com"); a != ActionPrioritize {
		t.Fatalf("smtp.mail = %v", a)
	}
	if a := p.Decide("docs.google.com"); a != ActionDeprioritize {
		t.Fatalf("docs = %v", a)
	}
	if a := p.Decide("example.com"); a != ActionAllow {
		t.Fatalf("other = %v", a)
	}
}

func TestPolicySuffixSemantics(t *testing.T) {
	p := NewPolicy(Rule{Pattern: "zynga.com", Action: ActionBlock})
	for _, name := range []string{"zynga.com", "poker.zynga.com", "a.b.zynga.com"} {
		if a := p.Decide(name); a != ActionBlock {
			t.Errorf("Decide(%q) = %v", name, a)
		}
	}
	for _, name := range []string{"notzynga.com", "zynga.com.evil.net", ""} {
		if a := p.Decide(name); a != ActionAllow {
			t.Errorf("Decide(%q) = %v, want allow", name, a)
		}
	}
}

func TestPolicyWildcard(t *testing.T) {
	p := NewPolicy(Rule{Pattern: "*.google.com", Action: ActionBlock})
	if a := p.Decide("mail.google.com"); a != ActionBlock {
		t.Fatalf("subdomain = %v", a)
	}
	if a := p.Decide("google.com"); a != ActionAllow {
		t.Fatalf("apex should not match wildcard: %v", a)
	}
}

func TestPolicyCaseInsensitive(t *testing.T) {
	p := NewPolicy(Rule{Pattern: "Zynga.COM", Action: ActionBlock})
	if a := p.Decide("POKER.zynga.com"); a != ActionBlock {
		t.Fatalf("got %v", a)
	}
}

func TestPolicyDecisionsCounter(t *testing.T) {
	p := NewPolicy(Rule{Pattern: "x.com", Action: ActionBlock})
	p.Decide("x.com")
	p.Decide("y.com")
	p.Decide("z.com")
	d := p.Decisions()
	if d[ActionBlock] != 1 || d[ActionAllow] != 2 {
		t.Fatalf("decisions = %v", d)
	}
}

func TestPolicyAppend(t *testing.T) {
	p := NewPolicy()
	if a := p.Decide("a.com"); a != ActionAllow {
		t.Fatalf("empty policy = %v", a)
	}
	p.Append(Rule{Pattern: "a.com", Action: ActionRateLimit})
	if a := p.Decide("a.com"); a != ActionRateLimit {
		t.Fatalf("after append = %v", a)
	}
}

func TestPolicyDecideSLD(t *testing.T) {
	p := NewPolicy(Rule{Pattern: "zynga.com", Action: ActionBlock})
	if a := p.DecideSLD("static.cdn.zynga.com"); a != ActionBlock {
		t.Fatalf("got %v", a)
	}
}

func TestActionString(t *testing.T) {
	names := map[Action]string{
		ActionAllow: "allow", ActionBlock: "block", ActionPrioritize: "prioritize",
		ActionDeprioritize: "deprioritize", ActionRateLimit: "ratelimit",
	}
	for a, want := range names {
		if a.String() != want {
			t.Fatalf("%v.String() = %q", a, a.String())
		}
	}
}
