package core

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/netio"
	"repro/internal/synth"
)

// fillEntries publishes count sequence-numbered entries through r in slots
// of the ring's batch size, using the `at` field as the sequence number.
// Payloads are per-entry heap slices (blk nil — the stable-storage case).
func fillEntries(r *spscRing, count, batch int) {
	for seq := 0; seq < count; {
		s := r.slot()
		for len(s.entries) < batch && seq < count {
			e := shardEntry{at: time.Duration(seq), kind: entryFlow}
			e.pay = []byte(fmt.Sprintf("p%d", seq))
			s.entries = append(s.entries, e)
			seq++
		}
		r.publish()
	}
	r.close()
}

// drainEntries consumes everything from r, verifying FIFO order and
// payload integrity, and returns the number of entries seen. It releases
// slot handles before returning slots, exactly like shardWorker.run.
func drainEntries(t *testing.T, r *spscRing) int {
	t.Helper()
	seq := 0
	for {
		s, ok := r.consume()
		if !ok {
			return seq
		}
		for i := range s.entries {
			e := &s.entries[i]
			if got, want := int(e.at), seq; got != want {
				t.Fatalf("entry %d: sequence %d out of order", want, got)
			}
			if got, want := string(e.pay), fmt.Sprintf("p%d", seq); got != want {
				t.Fatalf("entry %d: payload %q, want %q", seq, got, want)
			}
			seq++
		}
		releaseSlotBlocks(s)
		r.release()
	}
}

// TestRingWraparound pushes far more slots than the ring holds, so head
// and tail wrap the index space repeatedly; full and empty transitions are
// exercised at every boundary because producer and consumer alternate.
func TestRingWraparound(t *testing.T) {
	const batch = 3
	r := newRing(4, batch, newConsGate())
	depth := len(r.slots)
	const rounds = 10
	total := depth * rounds * batch

	done := make(chan int, 1)
	go func() {
		n := 0
		for {
			s, ok := r.consume()
			if !ok {
				done <- n
				return
			}
			for i := range s.entries {
				e := &s.entries[i]
				if int(e.at) != n {
					t.Errorf("entry %d: sequence %d out of order", n, int(e.at))
				}
				if got, want := string(e.pay), fmt.Sprintf("p%d", n); got != want {
					t.Errorf("entry %d: payload %q, want %q", n, got, want)
				}
				n++
			}
			releaseSlotBlocks(s)
			r.release()
		}
	}()
	fillEntries(r, total, batch)
	if got := <-done; got != total {
		t.Fatalf("consumed %d entries, want %d", got, total)
	}
}

// TestRingBackpressure parks the producer on a full ring: the consumer
// releases slots only after a delay, so the producer must block (not drop,
// not overwrite) until wraparound space frees up. The park counter must
// record the stall.
func TestRingBackpressure(t *testing.T) {
	const batch = 4
	r := newRing(2, batch, newConsGate())
	var parks atomic.Uint64
	r.parks = &parks
	total := len(r.slots) * batch * 8

	produced := make(chan struct{})
	go func() {
		fillEntries(r, total, batch)
		close(produced)
	}()
	// Give the producer time to hit the full ring and park.
	time.Sleep(10 * time.Millisecond)
	select {
	case <-produced:
		t.Fatal("producer finished before consumer freed any slot; ring not bounded")
	default:
	}
	if got := drainEntries(t, r); got != total {
		t.Fatalf("consumed %d entries, want %d", got, total)
	}
	<-produced
	if parks.Load() == 0 {
		t.Error("producer parked on a full ring but the park counter stayed zero")
	}
}

// TestRingCloseDrainsPartial publishes a final partial slot before close;
// the consumer must see every entry, then observe the close.
func TestRingCloseDrainsPartial(t *testing.T) {
	const batch = 8
	r := newRing(4, batch, newConsGate())
	const total = batch*2 + 3 // last slot deliberately partial
	go fillEntries(r, total, batch)
	if got := drainEntries(t, r); got != total {
		t.Fatalf("consumed %d entries, want %d", got, total)
	}
}

// TestRingCloseEmpty closes a ring that never published; the consumer must
// return immediately with ok=false even from a parked wait.
func TestRingCloseEmpty(t *testing.T) {
	r := newRing(2, 4, newConsGate())
	go func() {
		time.Sleep(5 * time.Millisecond) // let the consumer park first
		r.close()
	}()
	if _, ok := r.consume(); ok {
		t.Fatal("consume returned a slot from an empty closed ring")
	}
}

// TestRingConcurrentStress runs a producer and consumer flat out under the
// race detector: the SPSC protocol's only synchronization is the pair of
// atomic indices, so any missing happens-before edge shows up here.
func TestRingConcurrentStress(t *testing.T) {
	const batch = 16
	r := newRing(8, batch, newConsGate())
	const total = 100_000
	go fillEntries(r, total, batch)
	if got := drainEntries(t, r); got != total {
		t.Fatalf("consumed %d entries, want %d", got, total)
	}
}

// TestRingBlockHandleRelease runs block-backed payloads through a ring:
// every appended entry takes a reference, the consumer's releaseSlotBlocks
// must return them all (the pool sees the block retire exactly once), and
// discardFill must do the same for an unpublished fill slot (abort path).
func TestRingBlockHandleRelease(t *testing.T) {
	pool := netio.NewBlockPool(1024, 4)
	r := newRing(2, 4, newConsGate())

	blk := pool.Get(0)
	s := r.slot()
	for i := 0; i < 3; i++ {
		blk.Retain(1)
		s.entries = append(s.entries, shardEntry{at: time.Duration(i), kind: entryFlow, pay: []byte("x"), blk: blk})
	}
	r.publish()
	r.close()
	blk.Release(1) // the producer's own Get reference

	got, ok := r.consume()
	if !ok {
		t.Fatal("no slot")
	}
	if n := len(got.entries); n != 3 {
		t.Fatalf("consumed %d entries, want 3", n)
	}
	releaseSlotBlocks(got)
	r.release()
	if st := pool.Stats(); st.Retired != 1 {
		t.Fatalf("block retired %d times after consumer release, want 1", st.Retired)
	}
	for i := range got.entries {
		if got.entries[i].blk != nil || got.entries[i].pay != nil {
			t.Fatalf("entry %d: handles not cleared after releaseSlotBlocks", i)
		}
	}

	// Abort path: entries sitting in a never-published fill slot.
	blk2 := pool.Get(0)
	r2 := newRing(2, 4, newConsGate())
	s2 := r2.slot()
	blk2.Retain(1)
	s2.entries = append(s2.entries, shardEntry{kind: entryFlow, pay: []byte("y"), blk: blk2})
	blk2.Release(1) // producer's Get reference
	r2.discardFill()
	r2.close()
	if st := pool.Stats(); st.Retired != 2 {
		t.Fatalf("block retired %d times after discardFill, want 2", st.Retired)
	}
}

// TestEngineShardEquivalenceBatchBoundaries sweeps the hand-off batch size
// across the boundaries where slot-full flushes and ring wraparound kick
// in — 1 (every entry publishes), capacity−1, capacity, capacity+1 around
// a mid-size slot — and checks exact equivalence against shards=1 at each.
func TestEngineShardEquivalenceBatchBoundaries(t *testing.T) {
	tr := synth.Generate(synth.NamedScenario(synth.NameEU1FTTH, 0.1, 9))
	single := runEngine(t, tr, 1)
	want := flowMultiset(single.DB)

	const slotCap = 64
	for _, batch := range []int{1, slotCap - 1, slotCap, slotCap + 1} {
		t.Run(fmt.Sprintf("batch=%d", batch), func(t *testing.T) {
			eng := NewEngine(EngineConfig{Shards: 3, Batch: batch, Truth: tr.TruthFunc()})
			res, err := eng.Run(t.Context(), tr.Source())
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats != single.Stats {
				t.Errorf("stats diverge:\n single %+v\n sharded %+v", single.Stats, res.Stats)
			}
			diffMultisets(t, want, flowMultiset(res.DB), fmt.Sprintf("batch=%d", batch))
		})
	}
}

// FuzzShardBatchEquivalence fuzzes the (seed, shards, batch) space: any
// combination must reproduce the single-shard flow multiset and stats
// exactly. Seeds cover the batch boundaries around the default slot
// capacity and degenerate single-entry slots.
func FuzzShardBatchEquivalence(f *testing.F) {
	f.Add(uint64(7), 2, 1)
	f.Add(uint64(7), 3, defaultBatch-1)
	f.Add(uint64(7), 3, defaultBatch)
	f.Add(uint64(7), 3, defaultBatch+1)
	f.Add(uint64(21), 8, 5)
	f.Fuzz(func(t *testing.T, seed uint64, shards, batch int) {
		if shards < 2 || shards > 16 || batch < 1 || batch > 4*defaultBatch {
			t.Skip()
		}
		tr := synth.Generate(synth.QuickScenario(seed))
		single := runEngine(t, tr, 1)
		eng := NewEngine(EngineConfig{Shards: shards, Batch: batch, Truth: tr.TruthFunc()})
		res, err := eng.Run(t.Context(), tr.Source())
		if err != nil {
			t.Fatal(err)
		}
		if res.Stats != single.Stats {
			t.Errorf("shards=%d batch=%d stats diverge:\n single %+v\n sharded %+v",
				shards, batch, single.Stats, res.Stats)
		}
		diffMultisets(t, flowMultiset(single.DB), flowMultiset(res.DB),
			fmt.Sprintf("seed=%d shards=%d batch=%d", seed, shards, batch))
	})
}
