package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/flowdb"
	"repro/internal/synth"
)

// flowMultisetNoVantage is flowMultiset with the vantage label cleared, so
// single-source RunSources output (stamped with its source name) can be
// compared against Run output (unstamped): the records must be identical in
// every other field.
func flowMultisetNoVantage(db *flowdb.DB) map[string]int {
	m := make(map[string]int, db.Len())
	for _, f := range db.All() {
		f.Vantage = ""
		m[fmt.Sprintf("%+v", f)]++
	}
	return m
}

// TestRunSourcesSingleEquivalence is the PR's exact-equivalence invariant:
// one registered source produces aggregate Stats and flow multisets
// identical to the single-source Run path, for one shard and for many.
func TestRunSourcesSingleEquivalence(t *testing.T) {
	tr := synth.Generate(synth.NamedScenario(synth.NameEU1FTTH, 0.12, 3))
	for _, shards := range []int{1, 4} {
		t.Run(fmt.Sprintf("shards-%d", shards), func(t *testing.T) {
			single := runEngine(t, tr, shards)
			eng := NewEngine(EngineConfig{Shards: shards})
			multi, err := eng.RunSources(context.Background(),
				[]NamedSource{{Name: "EU1", Src: tr.Source(), Truth: tr.TruthFunc()}})
			if err != nil {
				t.Fatal(err)
			}
			if multi.Stats != single.Stats {
				t.Errorf("aggregate stats diverge:\n run        %+v\n runsources %+v", single.Stats, multi.Stats)
			}
			if got := multi.PerVantage["EU1"].Stats; got != single.Stats {
				t.Errorf("per-vantage stats diverge:\n run        %+v\n runsources %+v", single.Stats, got)
			}
			diffMultisets(t, flowMultisetNoVantage(single.DB), flowMultisetNoVantage(multi.DB), "merged-vs-run")
			for _, f := range multi.DB.All() {
				if f.Vantage != "EU1" {
					t.Fatalf("flow missing vantage stamp: %+v", f)
				}
			}
			if got := multi.DB.Vantages(); len(got) != 1 || got[0] != "EU1" {
				t.Errorf("Vantages() = %v", got)
			}
			if n := len(multi.DB.ByVantage("EU1")); n != multi.DB.Len() {
				t.Errorf("ByVantage covers %d of %d flows", n, multi.DB.Len())
			}
		})
	}
}

// TestRunSourcesIsolation: each vantage's partition must be exactly what a
// standalone Run over that source produces — concurrent ingestion shares no
// state across vantages even though the synthetic client address spaces
// collide completely.
func TestRunSourcesIsolation(t *testing.T) {
	traces := map[string]*synth.Trace{
		"US":  synth.Generate(synth.NamedScenario(synth.NameUS3G, 0.1, 5)),
		"EU1": synth.Generate(synth.NamedScenario(synth.NameEU1FTTH, 0.1, 7)),
		"EU2": synth.Generate(synth.QuickScenario(11)),
	}
	order := []string{"US", "EU1", "EU2"}
	for _, shards := range []int{1, 3} {
		var sources []NamedSource
		for _, name := range order {
			tr := traces[name]
			sources = append(sources, NamedSource{Name: name, Src: tr.Source(), Truth: tr.TruthFunc()})
		}
		eng := NewEngine(EngineConfig{Shards: shards, MergeWindow: 30 * time.Second})
		multi, err := eng.RunSources(context.Background(), sources)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}

		var want Stats
		total := 0
		for _, name := range order {
			solo := runEngine(t, traces[name], shards)
			vr := multi.PerVantage[name]
			if vr.Stats != solo.Stats {
				t.Errorf("shards=%d vantage %s stats diverge from solo run:\n solo  %+v\n multi %+v",
					shards, name, solo.Stats, vr.Stats)
			}
			diffMultisets(t, flowMultisetNoVantage(solo.DB), flowMultisetNoVantage(vr.DB),
				fmt.Sprintf("shards=%d vantage=%s", shards, name))
			want.Add(vr.Stats)
			total += vr.DB.Len()
			if n := len(multi.DB.ByVantage(name)); n != vr.DB.Len() {
				t.Errorf("shards=%d: merged ByVantage(%s) has %d flows, partition has %d",
					shards, name, n, vr.DB.Len())
			}
		}
		if multi.Stats != want {
			t.Errorf("shards=%d: aggregate stats != sum of partitions", shards)
		}
		if multi.DB.Len() != total {
			t.Errorf("shards=%d: merged DB has %d flows, partitions sum to %d", shards, multi.DB.Len(), total)
		}
	}
}

// TestRunSourcesDeterminism: same sources, same results, run to run.
func TestRunSourcesDeterminism(t *testing.T) {
	gen := func() []NamedSource {
		a := synth.Generate(synth.QuickScenario(41))
		b := synth.Generate(synth.QuickScenario(43))
		return []NamedSource{
			{Name: "A", Src: a.Source(), Truth: a.TruthFunc()},
			{Name: "B", Src: b.Source(), Truth: b.TruthFunc()},
		}
	}
	eng := NewEngine(EngineConfig{Shards: 2})
	r1, err := eng.RunSources(context.Background(), gen())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := eng.RunSources(context.Background(), gen())
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats != r2.Stats {
		t.Errorf("stats not deterministic:\n %+v\n %+v", r1.Stats, r2.Stats)
	}
	diffMultisets(t, flowMultiset(r1.DB), flowMultiset(r2.DB), "rerun")
}

// vantageSink records which vantage labels appear on each event type.
type vantageSink struct {
	mu     sync.Mutex
	tags   map[string]int
	dns    map[string]int
	flows  map[string]int
	closed int
}

func newVantageSink() *vantageSink {
	return &vantageSink{tags: map[string]int{}, dns: map[string]int{}, flows: map[string]int{}}
}

func (s *vantageSink) OnTag(e TagEvent)         { s.mu.Lock(); s.tags[e.Vantage]++; s.mu.Unlock() }
func (s *vantageSink) OnDNSResponse(e DNSEvent) { s.mu.Lock(); s.dns[e.Vantage]++; s.mu.Unlock() }
func (s *vantageSink) OnFlow(f flowdb.LabeledFlow) {
	s.mu.Lock()
	s.flows[f.Vantage]++
	s.mu.Unlock()
}
func (s *vantageSink) Close() error { s.mu.Lock(); s.closed++; s.mu.Unlock(); return nil }

// TestRunSourcesSinkAttribution: the shared sink sees every vantage's
// events exactly once, each stamped with its vantage name, and Close fires
// exactly once for the whole run.
func TestRunSourcesSinkAttribution(t *testing.T) {
	a := synth.Generate(synth.QuickScenario(17))
	b := synth.Generate(synth.QuickScenario(19))
	for _, shards := range []int{1, 4} {
		sink := newVantageSink()
		eng := NewEngine(EngineConfig{Shards: shards, Sink: sink})
		multi, err := eng.RunSources(context.Background(), []NamedSource{
			{Name: "A", Src: a.Source()},
			{Name: "B", Src: b.Source()},
		})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if sink.closed != 1 {
			t.Errorf("shards=%d: Close ran %d times", shards, sink.closed)
		}
		for _, name := range []string{"A", "B"} {
			st := multi.PerVantage[name].Stats
			if uint64(sink.dns[name]) != st.DNSResponses {
				t.Errorf("shards=%d vantage %s: %d DNS events, want %d", shards, name, sink.dns[name], st.DNSResponses)
			}
			if uint64(sink.flows[name]) != st.Flows {
				t.Errorf("shards=%d vantage %s: %d flow events, want %d", shards, name, sink.flows[name], st.Flows)
			}
			if uint64(sink.tags[name]) != st.Table.FlowsCreated {
				t.Errorf("shards=%d vantage %s: %d tag events, want %d", shards, name, sink.tags[name], st.Table.FlowsCreated)
			}
		}
		if n := len(sink.tags) + len(sink.dns) + len(sink.flows); sink.tags[""]+sink.dns[""]+sink.flows[""] != 0 {
			t.Errorf("shards=%d: events with empty vantage label (%d label sets)", shards, n)
		}
	}
}

// TestRunSourcesPacingUnevenLengths: a 30-minute trace and a 3-hour trace
// under a tight merge window — the short vantage finishes early and must
// not stall the long one (EOF removes it from the skew computation).
func TestRunSourcesPacingUnevenLengths(t *testing.T) {
	short := synth.Generate(synth.QuickScenario(23))
	long := synth.Generate(synth.NamedScenario(synth.NameEU1FTTH, 0.08, 29))
	eng := NewEngine(EngineConfig{MergeWindow: time.Second})
	done := make(chan struct{})
	var multi *MultiResult
	var err error
	go func() {
		defer close(done)
		multi, err = eng.RunSources(context.Background(), []NamedSource{
			{Name: "short", Src: short.Source()},
			{Name: "long", Src: long.Source()},
		})
	}()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatal("RunSources deadlocked under a tight merge window")
	}
	if err != nil {
		t.Fatal(err)
	}
	// Pacing must not change results: compare against the unpaced run.
	free := NewEngine(EngineConfig{MergeWindow: -1})
	unpaced, err := free.RunSources(context.Background(), []NamedSource{
		{Name: "short", Src: short.Source()},
		{Name: "long", Src: long.Source()},
	})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Stats != unpaced.Stats {
		t.Errorf("pacing changed aggregate stats:\n paced   %+v\n unpaced %+v", multi.Stats, unpaced.Stats)
	}
	diffMultisets(t, flowMultiset(unpaced.DB), flowMultiset(multi.DB), "paced-vs-unpaced")
}

// TestRunSourcesCancel: cancellation unblocks clock waiters and readers,
// the error surfaces, and the sink still closes exactly once.
func TestRunSourcesCancel(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(31))
	for _, shards := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
		sink := newVantageSink()
		eng := NewEngine(EngineConfig{Shards: shards, Sink: sink, MergeWindow: time.Second})
		_, err := eng.RunSources(ctx, []NamedSource{
			{Name: "A", Src: &endlessSource{pkts: tr.Packets}},
			{Name: "B", Src: &endlessSource{pkts: tr.Packets}},
		})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("shards=%d: err = %v, want deadline exceeded", shards, err)
		}
		if sink.closed != 1 {
			t.Errorf("shards=%d: Close ran %d times after cancel", shards, sink.closed)
		}
	}
}

// TestRunSourcesSourceError: one failing vantage aborts the run; the error
// names the vantage and wraps the cause.
func TestRunSourcesSourceError(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(37))
	srcErr := errors.New("capture ring overrun")
	res, err := NewEngine(EngineConfig{}).RunSources(context.Background(), []NamedSource{
		{Name: "ok", Src: tr.Source()},
		{Name: "bad", Src: &failingSource{pkts: tr.Packets[:50], err: srcErr}},
	})
	if !errors.Is(err, srcErr) {
		t.Fatalf("err = %v, want wrapped source error", err)
	}
	if !strings.Contains(err.Error(), `"bad"`) {
		t.Errorf("error does not name the failing vantage: %v", err)
	}
	// Failure isolation: the healthy vantage's full result survives.
	if res == nil {
		t.Fatal("no partial MultiResult alongside the vantage error")
	}
	if !errors.Is(res.Errors["bad"], srcErr) {
		t.Errorf("Errors[bad] = %v, want the source error", res.Errors["bad"])
	}
	if _, dead := res.PerVantage["bad"]; dead {
		t.Error("failed vantage present in PerVantage")
	}
	solo, serr := NewEngine(EngineConfig{}).RunSources(context.Background(), []NamedSource{
		{Name: "ok", Src: tr.Source()},
	})
	if serr != nil {
		t.Fatal(serr)
	}
	if got, want := res.PerVantage["ok"].Stats, solo.PerVantage["ok"].Stats; got != want {
		t.Errorf("surviving vantage stats diverge from a solo run:\n got %+v\nwant %+v", got, want)
	}
	if got, want := res.DB.Len(), solo.DB.Len(); got != want {
		t.Errorf("partial merged DB has %d flows, solo run has %d", got, want)
	}
	if res.Stats != solo.Stats {
		t.Errorf("partial aggregate stats include the dead vantage: %+v vs %+v", res.Stats, solo.Stats)
	}
}

// TestRunSourcesAggregatesAllErrors: every failed vantage is reported —
// errors.Join exposes each cause, none hides behind the first.
func TestRunSourcesAggregatesAllErrors(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(41))
	errA := errors.New("fiber cut at A")
	errB := errors.New("disk full at B")
	res, err := NewEngine(EngineConfig{}).RunSources(context.Background(), []NamedSource{
		{Name: "A", Src: &failingSource{pkts: tr.Packets[:20], err: errA}},
		{Name: "ok", Src: tr.Source()},
		{Name: "B", Src: &failingSource{pkts: tr.Packets[:40], err: errB}},
	})
	if !errors.Is(err, errA) || !errors.Is(err, errB) {
		t.Fatalf("joined error misses a vantage failure: %v", err)
	}
	if len(res.Errors) != 2 || !errors.Is(res.Errors["A"], errA) || !errors.Is(res.Errors["B"], errB) {
		t.Errorf("Errors map = %v", res.Errors)
	}
	if len(res.PerVantage) != 1 || res.PerVantage["ok"] == nil {
		t.Errorf("PerVantage = %v, want only the survivor", res.PerVantage)
	}
	if got := res.Vantages; len(got) != 3 {
		t.Errorf("Vantages = %v, want all three names in order", got)
	}
}

// TestRunSourcesValidation: bad source lists fail fast.
func TestRunSourcesValidation(t *testing.T) {
	tr := synth.Generate(synth.QuickScenario(39))
	eng := NewEngine(EngineConfig{})
	cases := map[string][]NamedSource{
		"empty":     {},
		"unnamed":   {{Name: "", Src: tr.Source()}},
		"duplicate": {{Name: "X", Src: tr.Source()}, {Name: "X", Src: tr.Source()}},
		"nil-src":   {{Name: "X", Src: nil}},
	}
	for name, sources := range cases {
		if _, err := eng.RunSources(context.Background(), sources); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

// TestVClockSkewBound: a fast reader blocks at min+window until the slow
// reader advances, and finish releases it permanently.
func TestVClockSkewBound(t *testing.T) {
	c := newVClock(2, time.Minute)
	c.advance(1, 0) // slow vantage at t=0

	blocked := make(chan struct{})
	released := make(chan struct{})
	go func() {
		close(blocked)
		c.advance(0, 5*time.Minute) // 5 min ahead: must block
		close(released)
	}()
	<-blocked
	select {
	case <-released:
		t.Fatal("fast reader not blocked beyond the window")
	case <-time.After(50 * time.Millisecond):
	}
	c.advance(1, 4*time.Minute+time.Second) // now within window
	select {
	case <-released:
	case <-time.After(5 * time.Second):
		t.Fatal("fast reader not released after slow vantage advanced")
	}
	// A finished vantage never holds others back.
	c.advance(1, 4*time.Minute+2*time.Second)
	c.finish(1)
	doneCh := make(chan struct{})
	go func() {
		c.advance(0, 24*time.Hour)
		close(doneCh)
	}()
	select {
	case <-doneCh:
	case <-time.After(5 * time.Second):
		t.Fatal("finish did not release the clock")
	}
}
