package core

// Streaming service mode: Serve is Run for unbounded input. A batch Run
// ingests a finite trace, accumulates every labeled flow in Result.DB,
// and exits; Serve runs until its context is cancelled, bounds memory by
// flushing flows through a rolling windowed store (flowdb.Windowed)
// instead of accumulating them, sheds load instead of stalling the reader
// when a shard backs up, and checkpoints resolver state so a restart does
// not lose the DNS→flow context the paper's Clist exists to provide.
//
// Graceful drain reuses the batch pipeline's own end-of-capture path
// rather than duplicating it: cancelling the Serve context does not
// cancel the inner engine — it makes the packet source report EOF, so
// runSingle/runSharded take their normal EOF exit (flush all flows, merge
// stats, close the sink, flush the final window). Only if the drain
// exceeds DrainTimeout is the inner context hard-cancelled, which aborts
// without flushing, exactly like a cancelled batch Run.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"sort"
	"sync/atomic"
	"time"

	"repro/internal/flowdb"
	"repro/internal/netio"
	"repro/internal/resolver"
)

// shedShard is one shard's drop counters, padded so adjacent shards'
// counters never share a cache line (the dispatcher bumps them at packet
// rate under overload).
type shedShard struct {
	flows atomic.Uint64
	dns   atomic.Uint64
	bytes atomic.Uint64
	_     [40]byte
}

// shedMatrix is one engine run's drop-counter grid: cell r*shards+s
// belongs to (reader r, shard s). Each dispatcher writes only its own row,
// so rows never contend; PerShard folds the reader dimension away for the
// stable external shape.
type shedMatrix struct {
	readers int
	shards  int
	cells   []shedShard
}

// ShedStats accounts per-reader-per-shard overload drops. Dispatchers are
// the only writers (each its own row); any goroutine may read (the metrics
// endpoint does). The zero value is valid and reports zeroes until an
// engine run initializes it.
type ShedStats struct {
	m atomic.Pointer[shedMatrix]
}

// init sizes the (reader, shard) counter grid; called by runSharded before
// any dispatcher starts.
func (s *ShedStats) init(readers, shards int) {
	s.m.Store(&shedMatrix{readers: readers, shards: shards, cells: make([]shedShard, readers*shards)})
}

// drop records one shed entry. Called only from a dispatcher, after a
// failed trySlot, so it is off the no-drop fast path.
func (s *ShedStats) drop(reader, sh int, kind uint8, payloadLen int) {
	m := s.m.Load()
	if m == nil {
		return
	}
	c := &m.cells[reader*m.shards+sh]
	if kind == entryDNS {
		c.dns.Add(1)
	} else {
		c.flows.Add(1)
	}
	c.bytes.Add(uint64(payloadLen))
}

// ShedShard is a point-in-time copy of one shard's drop counters.
type ShedShard struct {
	// Flows counts dropped flow-path entries (one per packet): each is a
	// packet whose bytes are missing from its flow's accounting; if every
	// packet of a flow is dropped, the flow is missing entirely.
	Flows uint64
	// DNS counts dropped UDP/53 entries: DNS responses the resolver never
	// saw, so flows they would have labeled stay unlabeled — shedding
	// degrades tagging coverage, and this counter bounds by how much.
	DNS uint64
	// Bytes sums the payload bytes of dropped entries.
	Bytes uint64
}

// PerShard returns a copy of every shard's drop counters (index == shard),
// summed over readers — the external shape is reader-count independent.
func (s *ShedStats) PerShard() []ShedShard {
	m := s.m.Load()
	if m == nil {
		return nil
	}
	out := make([]ShedShard, m.shards)
	for r := 0; r < m.readers; r++ {
		for sh := 0; sh < m.shards; sh++ {
			c := &m.cells[r*m.shards+sh]
			out[sh].Flows += c.flows.Load()
			out[sh].DNS += c.dns.Load()
			out[sh].Bytes += c.bytes.Load()
		}
	}
	return out
}

// Totals sums the per-shard drop counters.
func (s *ShedStats) Totals() ShedShard {
	var t ShedShard
	for _, sh := range s.PerShard() {
		t.Flows += sh.Flows
		t.DNS += sh.DNS
		t.Bytes += sh.Bytes
	}
	return t
}

// readerCell is one reader partition's live backpressure counters, padded
// to a cache line so adjacent readers never false-share. The stripe writes
// pkts/shedFrames and the ingress ring's park counter points at parks; the
// reader's dispatcher bumps meshParks through its mesh rings — distinct
// writers per field, all packet-rate, so the padding matters.
type readerCell struct {
	pkts       atomic.Uint64 // frames routed to this reader
	parks      atomic.Uint64 // stripe parks on this reader's full ingress ring
	meshParks  atomic.Uint64 // dispatcher parks on full mesh rings (summed over shards)
	shedFrames atomic.Uint64 // raw frames shed at ingress (serve mode, ring full)
	_          [32]byte
}

// ReaderStat is a point-in-time copy of one reader partition's
// backpressure counters (see Result.Readers and ServeMetrics.ReaderStats).
type ReaderStat struct {
	// Pkts counts raw frames routed to this reader partition.
	Pkts uint64 `json:"pkts"`
	// RingFullParks counts stripe park events on this reader's full ingress
	// ring — sustained growth means the partition's dispatcher is the
	// bottleneck (skewed clients or an overloaded core).
	RingFullParks uint64 `json:"ring_full_parks"`
	// MeshFullParks counts this reader's dispatcher parking on full
	// dispatcher→shard rings — sustained growth means a shard is the
	// bottleneck, not the parse.
	MeshFullParks uint64 `json:"mesh_full_parks"`
	// ShedFrames counts raw frames dropped at ingress under overload
	// shedding, before any parse: they appear in no parser or shed-entry
	// counter, only here.
	ShedFrames uint64 `json:"shed_frames"`
}

// ServeMetrics is the live observable state of a serving engine. All
// methods are safe for concurrent use while the engine runs; the
// internal/serve HTTP endpoint reads them on every scrape.
type ServeMetrics struct {
	packets      atomic.Uint64
	bytes        atomic.Uint64
	clockNs      atomic.Int64
	tags         atomic.Uint64
	dnsResponses atomic.Uint64
	flows        atomic.Uint64
	labeled      atomic.Uint64
	restored     atomic.Uint64
	draining     atomic.Bool

	// Fault surface (see supervisor.go and loadCheckpoint): classified
	// source-error counters, restart accounting, checkpoint fresh starts,
	// and the degraded flag /healthz reports.
	faultTransient atomic.Uint64
	faultFatal     atomic.Uint64
	restarts       atomic.Uint64
	restartBudget  atomic.Int64 // total budget; 0 = supervision off
	freshStarts    atomic.Uint64
	degraded       atomic.Bool

	// Shed holds the per-shard overload drop counters.
	Shed ShedStats

	win     atomic.Pointer[flowdb.Windowed]
	rings   atomic.Pointer[[]*spscRing]
	readers atomic.Pointer[[]readerCell]
}

// Packets returns frames read from the source.
func (m *ServeMetrics) Packets() uint64 { return m.packets.Load() }

// Bytes returns frame bytes read from the source.
func (m *ServeMetrics) Bytes() uint64 { return m.bytes.Load() }

// TraceClock returns the newest packet timestamp read (trace time).
func (m *ServeMetrics) TraceClock() time.Duration { return time.Duration(m.clockNs.Load()) }

// Tags returns flows tagged at first packet.
func (m *ServeMetrics) Tags() uint64 { return m.tags.Load() }

// DNSResponses returns decoded address-bearing DNS responses.
func (m *ServeMetrics) DNSResponses() uint64 { return m.dnsResponses.Load() }

// Flows returns finished labeled-flow records emitted.
func (m *ServeMetrics) Flows() uint64 { return m.flows.Load() }

// LabeledFlows returns emitted records that carried a label.
func (m *ServeMetrics) LabeledFlows() uint64 { return m.labeled.Load() }

// RestoredEntries returns resolver entries restored from the checkpoint.
func (m *ServeMetrics) RestoredEntries() uint64 { return m.restored.Load() }

// Draining reports whether the serve context was cancelled and the engine
// is flushing its final state.
func (m *ServeMetrics) Draining() bool { return m.draining.Load() }

// Degraded reports whether the engine is serving in a degraded state: the
// source needed at least one supervised restart, or the checkpoint was
// rejected and serving began from a counted fresh start. Degraded is
// sticky for the run — it marks "results may have gaps", which a later
// recovery does not un-happen.
func (m *ServeMetrics) Degraded() bool { return m.degraded.Load() }

// SourceErrors returns the supervised source's classified error counters:
// transient (recovered by restart) and fatal (ended the run).
func (m *ServeMetrics) SourceErrors() (transient, fatal uint64) {
	return m.faultTransient.Load(), m.faultFatal.Load()
}

// SourceRestarts returns completed supervised source restarts.
func (m *ServeMetrics) SourceRestarts() uint64 { return m.restarts.Load() }

// RestartBudget returns the restart error budget: the policy's total
// (zero when supervision is off) and how much of it remains.
func (m *ServeMetrics) RestartBudget() (total, remaining int64) {
	total = m.restartBudget.Load()
	remaining = total - int64(m.restarts.Load())
	if remaining < 0 {
		remaining = 0
	}
	return total, remaining
}

// CheckpointFreshStarts counts checkpoint files rejected at startup
// (corrupt, truncated, or future-version), each answered by serving from
// empty resolver state instead of failing.
func (m *ServeMetrics) CheckpointFreshStarts() uint64 { return m.freshStarts.Load() }

// WindowsFlushed returns completed flowdb windows handed to FlushWindow.
func (m *ServeMetrics) WindowsFlushed() uint64 {
	if w := m.win.Load(); w != nil {
		return w.WindowsFlushed()
	}
	return 0
}

// WindowFlushLag returns how much trace time of flows the open window is
// currently buffering (see flowdb.Windowed.FlushLag).
func (m *ServeMetrics) WindowFlushLag() time.Duration {
	if w := m.win.Load(); w != nil {
		return w.FlushLag()
	}
	return 0
}

// RingDepths returns each dispatch ring's published-but-unconsumed slot
// count, flattened shard-major (ring i*Readers+r is reader r → shard i);
// nil for a single-shard engine (no rings). A depth pinned at the ring
// capacity (8) is a saturated shard.
func (m *ServeMetrics) RingDepths() []int {
	p := m.rings.Load()
	if p == nil {
		return nil
	}
	out := make([]int, len(*p))
	for i, r := range *p {
		out[i] = r.depth()
	}
	return out
}

// ReaderStats returns each reader partition's backpressure counters; nil
// for a single-shard engine (no reader stage).
func (m *ServeMetrics) ReaderStats() []ReaderStat {
	p := m.readers.Load()
	if p == nil {
		return nil
	}
	out := make([]ReaderStat, len(*p))
	for i := range *p {
		c := &(*p)[i]
		out[i] = ReaderStat{
			Pkts:          c.pkts.Load(),
			RingFullParks: c.parks.Load(),
			MeshFullParks: c.meshParks.Load(),
			ShedFrames:    c.shedFrames.Load(),
		}
	}
	return out
}

// ArenaStats returns the shared payload block pool's lifecycle counters
// (process-wide: the pool is shared by every engine in the process).
func (m *ServeMetrics) ArenaStats() netio.BlockPoolStats {
	return netio.DefaultBlockPool().Stats()
}

// ServeConfig tunes Server.Serve.
type ServeConfig struct {
	// Window is the flowdb partition width in trace time; completed
	// windows are handed to FlushWindow and their memory recycled. Zero
	// means 5 minutes.
	Window time.Duration
	// ObserveWindow sees each completed window before FlushWindow and
	// before its storage is recycled (flowdb.WindowConfig.Observe) — hang
	// streaming analytics here, e.g. analytics.Pipeline.ObserveWindow. It
	// runs even when FlushWindow is nil.
	ObserveWindow func(flowdb.Window)
	// FlushWindow receives each completed window in order (see
	// flowdb.WindowConfig.Flush for the DB lifetime contract). nil
	// discards completed windows: flows are then observable only through
	// the configured Sink.
	FlushWindow func(flowdb.Window) error
	// Shed switches the dispatcher→shard rings from blocking back-pressure
	// to overload shedding with per-shard drop accounting. Only meaningful
	// with Shards > 1.
	Shed bool
	// CheckpointPath, when non-empty, names the resolver Clist checkpoint
	// file: loaded (if present) before serving and rewritten after a
	// graceful drain. Written atomically (temp file + rename).
	CheckpointPath string
	// DrainTimeout bounds the graceful drain after context cancellation;
	// past it the engine is hard-cancelled and pending state is dropped
	// (no checkpoint is written). Zero means 30 seconds.
	DrainTimeout time.Duration
	// Restart, when non-nil, supervises the packet source: read errors
	// are classified transient or fatal, and transient ones restart the
	// source under exponential backoff with deterministic jitter, bounded
	// by an error budget. nil propagates the first source error, as a
	// batch Run would.
	Restart *RestartPolicy
}

// ServeReport is the outcome of one graceful Serve.
type ServeReport struct {
	// Stats are the merged pipeline statistics, as in a batch Result.
	Stats Stats
	// Packets and Bytes count frames read from the source.
	Packets, Bytes uint64
	// Windows counts flowdb windows flushed, including the final partial
	// window.
	Windows uint64
	// Dropped sums the overload-shed drop counters across shards.
	Dropped ShedShard
	// RestoredEntries is the resolver state loaded from the checkpoint at
	// startup; CheckpointedEntries is the state written at drain.
	RestoredEntries, CheckpointedEntries int
	// SourceRestarts counts supervised source restarts during the run
	// (transient errors the RestartPolicy recovered from).
	SourceRestarts uint64
	// FreshStart, when non-empty, records why the configured checkpoint
	// was rejected at startup: the run served from empty resolver state
	// rather than failing. Empty when the checkpoint loaded (or none was
	// configured).
	FreshStart string
}

// drainGrace is how long Serve waits after the hard-cancel before
// abandoning a wedged run goroutine.
const drainGrace = 100 * time.Millisecond

// Server runs one engine configuration in streaming mode. Build it with
// NewServer, inspect it live through Metrics, and run it with Serve. A
// Server handles one Serve call at a time.
type Server struct {
	cfg        EngineConfig
	scfg       ServeConfig
	metrics    ServeMetrics
	pipes      []*DNHunter
	restored   []resolver.SnapshotEntry
	freshStart string // why the checkpoint was rejected; "" = loaded fine
}

// NewServer assembles a streaming server around an engine configuration.
// The engine's Sink (if any) still observes every event; Serve wraps it
// to feed the windowed store and the metrics.
func NewServer(cfg EngineConfig, scfg ServeConfig) *Server {
	if scfg.DrainTimeout <= 0 {
		scfg.DrainTimeout = 30 * time.Second
	}
	return &Server{cfg: cfg, scfg: scfg}
}

// Metrics returns the live metrics view. Valid (reporting zeroes) before
// Serve starts and after it returns.
func (s *Server) Metrics() *ServeMetrics { return &s.metrics }

// Serve streams src through the pipeline until ctx is cancelled, then
// drains gracefully: the source is made to report EOF, in-flight flows
// are flushed through the sink and the final window, and — with a
// CheckpointPath — resolver state is written for the next run. Serve
// returns a nil error on a clean drain; it returns ctx.Err() only when
// the drain exceeded DrainTimeout and state was dropped.
func (s *Server) Serve(ctx context.Context, src netio.PacketSource) (*ServeReport, error) {
	if err := s.loadCheckpoint(); err != nil {
		return nil, err
	}
	win := flowdb.NewWindowed(flowdb.WindowConfig{Width: s.scfg.Window, Observe: s.scfg.ObserveWindow, Flush: s.scfg.FlushWindow})
	s.metrics.win.Store(win)

	cfg := s.cfg
	cfg.DiscardDB = true
	if s.scfg.Shed {
		cfg.Shed = &s.metrics.Shed
	}
	cfg.tapPipelines = s.tapPipelines
	cfg.tapRings = func(rs []*spscRing) { s.metrics.rings.Store(&rs) }
	cfg.tapReaders = func(cs []readerCell) { s.metrics.readers.Store(&cs) }
	cfg.Sink = &serveSink{inner: cfg.Sink, m: &s.metrics, win: win}

	// Supervision sits under the drain wrapper: the drain signal must
	// keep winning (stop means EOF now, not after a backoff), so the
	// supervisor shares the drainSource's stop flag and aborts any
	// in-progress recovery when it flips.
	var sup *supervisedSource
	if s.scfg.Restart != nil {
		sup = newSupervisedSource(src, *s.scfg.Restart, &s.metrics)
		s.metrics.restartBudget.Store(int64(sup.pol.MaxRestarts))
		src = sup
	}
	ds := &drainSource{src: src, fetch: newBlockFetcher(src), ref: netio.NewRefAdapter(src, nil), m: &s.metrics}
	if sup != nil {
		sup.stop = &ds.stop
	}

	// The inner context is NOT derived from ctx: cancellation must drain,
	// not abort. The engine runs on its own goroutine so Serve can turn
	// ctx cancellation into source EOF, then bound the drain: past
	// DrainTimeout the inner context is hard-cancelled and — if the
	// pipeline is wedged somewhere cancellation cannot reach, such as a
	// blocked sink callback — Serve abandons the run goroutine and
	// returns. After a timeout error the Server must not be reused.
	inner, cancel := context.WithCancel(context.Background())
	defer cancel()
	type runOut struct {
		res *Result
		err error
	}
	runC := make(chan runOut, 1)
	go func() {
		res, err := NewEngine(cfg).Run(inner, ds)
		runC <- runOut{res, err}
	}()

	var out *Result
	select {
	case r := <-runC:
		out = r.res
		if r.err != nil {
			return nil, r.err
		}
	case <-ctx.Done():
		s.metrics.draining.Store(true)
		ds.stop.Store(true)
		t := time.NewTimer(s.scfg.DrainTimeout)
		defer t.Stop()
		select {
		case r := <-runC:
			out = r.res
			if r.err != nil {
				return nil, r.err
			}
		case <-t.C:
			cancel()
			// One short grace period for the hard-cancel to unwind the
			// packet loop; a pipeline wedged beyond its reach is abandoned.
			g := time.NewTimer(drainGrace)
			defer g.Stop()
			select {
			case r := <-runC:
				out = r.res
				if r.err != nil {
					return nil, r.err
				}
			case <-g.C:
				return nil, fmt.Errorf("core: drain timed out after %v: %w", s.scfg.DrainTimeout, ctx.Err())
			}
		}
	}

	rep := &ServeReport{
		Stats:           out.Stats,
		Packets:         s.metrics.Packets(),
		Bytes:           s.metrics.Bytes(),
		Windows:         win.WindowsFlushed(),
		Dropped:         s.metrics.Shed.Totals(),
		RestoredEntries: len(s.restored),
		SourceRestarts:  s.metrics.SourceRestarts(),
		FreshStart:      s.freshStart,
	}
	if s.scfg.CheckpointPath != "" {
		snap := s.snapshotPipelines()
		if err := writeCheckpointFile(s.scfg.CheckpointPath, snap); err != nil {
			return rep, fmt.Errorf("core: writing checkpoint: %w", err)
		}
		rep.CheckpointedEntries = len(snap)
	}
	return rep, nil
}

// loadCheckpoint reads the configured checkpoint file. A missing file is
// a fresh start, not an error; so is an invalid one — a checkpoint that
// fails validation (corrupt, truncated, not a snapshot, or written by a
// newer version) must not brick the service that would rewrite it on the
// next clean drain. Rejections are counted (CheckpointFreshStarts), mark
// the run degraded, and surface in ServeReport.FreshStart. Only an I/O
// error on an existing file still fails startup: the file may be fine
// and silently ignoring it would discard real state.
func (s *Server) loadCheckpoint() error {
	s.restored = nil
	s.freshStart = ""
	if s.scfg.CheckpointPath == "" {
		return nil
	}
	f, err := os.Open(s.scfg.CheckpointPath)
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("core: opening checkpoint: %w", err)
	}
	defer f.Close()
	entries, err := resolver.ReadSnapshot(f)
	if err != nil {
		if errors.Is(err, resolver.ErrBadSnapshot) ||
			errors.Is(err, resolver.ErrSnapshotCorrupt) ||
			errors.Is(err, resolver.ErrSnapshotVersion) {
			s.freshStart = err.Error()
			s.metrics.freshStarts.Add(1)
			s.metrics.degraded.Store(true)
			return nil
		}
		return fmt.Errorf("core: reading checkpoint %s: %w", s.scfg.CheckpointPath, err)
	}
	s.restored = entries
	s.metrics.restored.Store(uint64(len(entries)))
	return nil
}

// tapPipelines is the engine's construction seam: it fires before the
// first packet, on the Run goroutine, and replays the restored checkpoint
// into each shard's resolver. Entries route by the same client-address
// hash the dispatcher uses, so a checkpoint taken at one shard count
// restores correctly at any other.
func (s *Server) tapPipelines(hs []*DNHunter) {
	s.pipes = hs
	if len(s.restored) == 0 {
		return
	}
	if len(hs) == 1 {
		hs[0].Resolver().Restore(s.restored)
		return
	}
	groups := make([][]resolver.SnapshotEntry, len(hs))
	for _, se := range s.restored {
		i := shardOfAddr(se.Client, len(hs))
		groups[i] = append(groups[i], se)
	}
	for i, g := range groups {
		hs[i].Resolver().Restore(g)
	}
}

// snapshotPipelines merges every shard's Clist snapshot into one
// checkpoint, ordered by response time (each shard's list is already
// time-ordered; the stable merge keeps the aggregate FIFO faithful).
func (s *Server) snapshotPipelines() []resolver.SnapshotEntry {
	var all []resolver.SnapshotEntry
	for _, h := range s.pipes {
		all = append(all, h.Resolver().Snapshot()...)
	}
	sort.SliceStable(all, func(i, j int) bool { return all[i].At < all[j].At })
	return all
}

// writeCheckpointFile writes entries atomically: temp file in the target
// directory, fsync, rename.
func writeCheckpointFile(path string, entries []resolver.SnapshotEntry) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := resolver.WriteSnapshot(f, entries); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	return os.Rename(tmp, path)
}

// drainSource wraps the live packet source: it counts packets, bytes, and
// the trace clock for the metrics, and turns the drain signal (stop) into
// io.EOF so the engine takes its normal end-of-capture path.
type drainSource struct {
	src   netio.PacketSource
	fetch blockFetcher
	ref   *netio.RefAdapter
	m     *ServeMetrics
	stop  atomic.Bool
}

// Next implements netio.PacketSource.
func (d *drainSource) Next() (netio.Packet, error) {
	if d.stop.Load() {
		return netio.Packet{}, io.EOF
	}
	pkt, err := d.src.Next()
	if err == nil {
		d.m.packets.Add(1)
		d.m.bytes.Add(uint64(len(pkt.Data)))
		d.m.clockNs.Store(int64(pkt.Timestamp))
	}
	return pkt, err
}

// ReadBlock implements netio.BlockSource (falling back to per-packet
// reads when the wrapped source lacks it).
func (d *drainSource) ReadBlock(dst []netio.Packet) (int, error) {
	if d.stop.Load() {
		return 0, io.EOF
	}
	n, err := d.fetch.read(dst)
	d.count(dst, n)
	return n, err
}

// ReadBlockRef implements netio.BlockRefSource through an embedded
// RefAdapter over the wrapped source, so the engine's handle-based dispatch
// stays zero-copy through serve mode (the adapter delegates directly when
// the source is itself a BlockRefSource).
func (d *drainSource) ReadBlockRef(dst []netio.Packet) (int, *netio.Block, error) {
	if d.stop.Load() {
		return 0, nil, io.EOF
	}
	n, blk, err := d.ref.ReadBlockRef(dst)
	d.count(dst, n)
	return n, blk, err
}

func (d *drainSource) count(dst []netio.Packet, n int) {
	if n <= 0 {
		return
	}
	var b uint64
	for i := 0; i < n; i++ {
		b += uint64(len(dst[i].Data))
	}
	d.m.packets.Add(uint64(n))
	d.m.bytes.Add(b)
	d.m.clockNs.Store(int64(dst[n-1].Timestamp))
}

// serveSink wraps the user sink: it counts events for the metrics and
// feeds finished flows into the windowed store. Close flushes the final
// window before closing the user sink, so the engine's end-of-run
// sequence (flush tables → emit residual flows → close sink) finishes the
// last window with every flow included.
type serveSink struct {
	inner  Sink
	m      *ServeMetrics
	win    *flowdb.Windowed
	winErr error
}

// OnTag implements Sink.
func (s *serveSink) OnTag(e TagEvent) {
	s.m.tags.Add(1)
	if s.inner != nil {
		s.inner.OnTag(e)
	}
}

// OnDNSResponse implements Sink.
func (s *serveSink) OnDNSResponse(e DNSEvent) {
	s.m.dnsResponses.Add(1)
	if s.inner != nil {
		s.inner.OnDNSResponse(e)
	}
}

// OnFlow implements Sink.
func (s *serveSink) OnFlow(f flowdb.LabeledFlow) {
	s.m.flows.Add(1)
	if f.Labeled {
		s.m.labeled.Add(1)
	}
	if s.winErr == nil {
		s.winErr = s.win.Add(f)
	}
	if s.inner != nil {
		s.inner.OnFlow(f)
	}
}

// Close implements Sink.
func (s *serveSink) Close() error {
	err := s.win.Close()
	if s.winErr != nil {
		err = s.winErr
	}
	if s.inner != nil {
		if cerr := s.inner.Close(); err == nil {
			err = cerr
		}
	}
	return err
}
