package experiments

import (
	"strings"
	"testing"

	"repro/internal/analytics"
	"repro/internal/flows"
	"repro/internal/synth"
)

// testSuite shares one scaled-down suite across tests (generation is the
// expensive part).
var shared = NewSuite(0.5, 7)

func init() { shared.LiveDays = 4 }

func TestTable1Renders(t *testing.T) {
	out := shared.Table1()
	for _, name := range synth.ScenarioNames {
		if !strings.Contains(out, name) {
			t.Fatalf("missing %s:\n%s", name, out)
		}
	}
}

func TestTable2Shapes(t *testing.T) {
	// Paper shape: HTTP/TLS well above 80%, P2P near zero, US-3G lowest.
	us := shared.Table2Data(synth.NameUS3G)
	eu := shared.Table2Data(synth.NameEU1ADSL1)
	if eu[flows.L7HTTP] < 0.85 || eu[flows.L7TLS] < 0.80 {
		t.Fatalf("EU hit ratios too low: %v", eu)
	}
	if us[flows.L7HTTP] >= eu[flows.L7HTTP] {
		t.Fatalf("US-3G HTTP (%v) should be below EU (%v)", us[flows.L7HTTP], eu[flows.L7HTTP])
	}
	if us[flows.L7P2P] > 0.15 || eu[flows.L7P2P] > 0.05 {
		t.Fatalf("P2P should be near zero: us=%v eu=%v", us[flows.L7P2P], eu[flows.L7P2P])
	}
}

func TestTable3Shape(t *testing.T) {
	// Paper: exact 9%, same-SLD 36%, different 26%, none 29% — reverse
	// lookup must disagree with DN-Hunter most of the time, with a
	// substantial no-answer share.
	_, res := shared.Table3()
	if res.Total < 50 {
		t.Fatalf("sample too small: %d", res.Total)
	}
	exact := res.Fraction(analytics.MatchExact)
	none := res.Fraction(analytics.MatchNone)
	diff := res.Fraction(analytics.MatchDifferent)
	sld := res.Fraction(analytics.MatchSLD)
	if exact > 0.5 {
		t.Fatalf("reverse lookup too accurate: exact=%v", exact)
	}
	if none < 0.05 {
		t.Fatalf("no-answer share too small: %v", none)
	}
	if diff+sld < 0.2 {
		t.Fatalf("mismatch mass too small: diff=%v sld=%v", diff, sld)
	}
}

func TestTable4Shape(t *testing.T) {
	// Paper: exact 18%, generic 19%, different 40%, none 23% — certificate
	// inspection resolves a minority of flows exactly.
	_, res := shared.Table4()
	if res.Total < 100 {
		t.Fatalf("too few TLS flows: %d", res.Total)
	}
	exact := res.Fraction(analytics.MatchExact)
	generic := res.Fraction(analytics.MatchGeneric)
	none := res.Fraction(analytics.MatchNone)
	diff := res.Fraction(analytics.MatchDifferent)
	if exact > 0.5 {
		t.Fatalf("certificates too precise: exact=%v", exact)
	}
	if generic < 0.05 {
		t.Fatalf("generic share too small: %v", generic)
	}
	if none < 0.05 {
		t.Fatalf("no-certificate share too small: %v", none)
	}
	if diff < 0.05 {
		t.Fatalf("different share too small: %v", diff)
	}
}

func TestTable5GeographyDiffers(t *testing.T) {
	us, eu := shared.Table5Data()
	if len(us) < 5 || len(eu) < 5 {
		t.Fatalf("rankings too short: %d/%d", len(us), len(eu))
	}
	// cloudfront leads both (paper rank 1 in both geos).
	if us[0].Name != "cloudfront.net" || eu[0].Name != "cloudfront.net" {
		t.Fatalf("top domains: us=%s eu=%s", us[0].Name, eu[0].Name)
	}
	// playfish is an EU phenomenon (paper rank 2 EU, absent US top-10).
	rank := func(list []analytics.ContentShare, name string) int {
		for i, c := range list {
			if c.Name == name {
				return i
			}
		}
		return -1
	}
	euPlay := rank(eu, "playfish.com")
	usPlay := rank(us, "playfish.com")
	if euPlay == -1 {
		t.Fatalf("playfish missing from EU ranking: %+v", eu)
	}
	if usPlay != -1 && usPlay <= euPlay {
		t.Fatalf("playfish should rank higher in EU (eu=%d us=%d)", euPlay, usPlay)
	}
	// The two rankings must differ somewhere in the top 5.
	same := true
	for i := 0; i < 5; i++ {
		if us[i].Name != eu[i].Name {
			same = false
			break
		}
	}
	if same {
		t.Fatal("US and EU rankings identical; geography effect missing")
	}
}

func TestTable6TagsRecoverServices(t *testing.T) {
	run := shared.Run(synth.NameEU1FTTH)
	// Port 25 must surface smtp-ish tokens.
	tags := analytics.ExtractTags(run.DB, 25, 5)
	if len(tags) == 0 {
		t.Fatal("no tags on port 25")
	}
	found := false
	for _, tg := range tags {
		if tg.Token == "smtp" || tg.Token == "smtpN" || tg.Token == "mail" {
			found = true
		}
	}
	if !found {
		t.Fatalf("port 25 tags miss smtp/mail: %v", tags)
	}
	// Port 110: pop tokens.
	tags = analytics.ExtractTags(run.DB, 110, 5)
	found = false
	for _, tg := range tags {
		if strings.HasPrefix(tg.Token, "pop") {
			found = true
		}
	}
	if !found {
		t.Fatalf("port 110 tags miss pop: %v", tags)
	}
}

func TestTable7UnknownPortRecovery(t *testing.T) {
	run := shared.Run(synth.NameUS3G)
	// Port 1337: the paper's exodus/genesis discovery.
	tags := analytics.ExtractTags(run.DB, 1337, 5)
	toks := map[string]bool{}
	for _, tg := range tags {
		toks[tg.Token] = true
	}
	if !toks["exodus"] && !toks["genesis"] {
		t.Fatalf("port 1337 tags: %v", tags)
	}
	// Port 5228: mtalk.
	tags = analytics.ExtractTags(run.DB, 5228, 3)
	if len(tags) == 0 || tags[0].Token != "mtalk" {
		t.Fatalf("port 5228 tags: %v", tags)
	}
}

func TestTable8Shape(t *testing.T) {
	_, rep := shared.Table8()
	if rep.TrackerFlows <= rep.GeneralFlows {
		t.Fatalf("tracker flows (%d) should dominate (general %d)", rep.TrackerFlows, rep.GeneralFlows)
	}
	if rep.GeneralServices <= rep.TrackerServices {
		t.Fatalf("general services (%d) should outnumber trackers (%d)", rep.GeneralServices, rep.TrackerServices)
	}
	if rep.GeneralS2C <= rep.TrackerS2C {
		t.Fatalf("general S2C bytes should dominate: %d vs %d", rep.GeneralS2C, rep.TrackerS2C)
	}
}

func TestTable9Shape(t *testing.T) {
	// Paper: 46–50% fixed-line, 30% mobile.
	usFrac := shared.Run(synth.NameUS3G).Stats.UselessDNSFraction()
	euFrac := shared.Run(synth.NameEU1ADSL1).Stats.UselessDNSFraction()
	if euFrac < 0.30 || euFrac > 0.65 {
		t.Fatalf("EU useless fraction out of band: %v", euFrac)
	}
	if usFrac >= euFrac {
		t.Fatalf("mobile useless fraction (%v) should be below fixed-line (%v)", usFrac, euFrac)
	}
}

func TestFigure3Shape(t *testing.T) {
	_, fqdnSingle, ipSingle := shared.Figure3()
	// Paper: 82% of FQDNs on one IP, 73% of IPs with one FQDN; heavy tail
	// beyond. Accept broad bands.
	if fqdnSingle < 0.4 || fqdnSingle > 0.98 {
		t.Fatalf("fqdn singleton share = %v", fqdnSingle)
	}
	if ipSingle < 0.3 || ipSingle > 0.98 {
		t.Fatalf("ip singleton share = %v", ipSingle)
	}
}

func TestFigure4Diurnal(t *testing.T) {
	_, series := shared.Figure4()
	yt := series["youtube.com"]
	if len(yt) < 100 {
		t.Fatalf("series too short: %d bins", len(yt))
	}
	// The 17:00–20:30 policy window (trace starts at 00:00) must average
	// clearly above the early morning: the paper's step (scaled-down
	// traffic is sampling-limited, so compare window means, not the
	// argmax).
	windowMean := func(fromH, toH float64) float64 {
		s, n := 0.0, 0
		for i := int(fromH * 6); i < int(toH*6) && i < len(yt); i++ {
			s += float64(yt[i])
			n++
		}
		return s / float64(n)
	}
	evening := windowMean(17, 20.5)
	morning := windowMean(3, 9)
	if evening <= morning*1.2 {
		t.Fatalf("youtube step missing: evening=%v morning=%v", evening, morning)
	}
	// fbcdn must use far more servers than blogspot (paper: 600 vs <20).
	maxOf := func(xs []int) int {
		m := 0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	if maxOf(series["fbcdn.net"]) <= 2*maxOf(series["blogspot.com"]) {
		t.Fatalf("fbcdn pool (%d) should dwarf blogspot (%d)",
			maxOf(series["fbcdn.net"]), maxOf(series["blogspot.com"]))
	}
}

func TestFigure5Shape(t *testing.T) {
	_, series := shared.Figure5()
	maxOf := func(xs []int) int {
		m := 0
		for _, x := range xs {
			if x > m {
				m = x
			}
		}
		return m
	}
	// Amazon and akamai serve many FQDNs; edgecast few (paper: >600 vs <20).
	if maxOf(series["amazon"]) <= maxOf(series["edgecast"]) {
		t.Fatalf("amazon (%d) should dwarf edgecast (%d)", maxOf(series["amazon"]), maxOf(series["edgecast"]))
	}
}

func TestFigure6Shape(t *testing.T) {
	_, bs := shared.Figure6()
	n := len(bs.FQDN)
	if bs.FQDN[n-1] <= bs.SLD[n-1] {
		t.Fatal("FQDN count must exceed SLD count")
	}
	if bs.GrowthRatio(bs.FQDN) <= bs.GrowthRatio(bs.Server) {
		t.Fatalf("FQDN late growth (%v) should exceed server late growth (%v)",
			bs.GrowthRatio(bs.FQDN), bs.GrowthRatio(bs.Server))
	}
}

func TestFigure7LinkedinTree(t *testing.T) {
	_, tree := shared.Figure7()
	if tree.Flows < 12 {
		t.Fatalf("too few linkedin flows: %d", tree.Flows)
	}
	// mediaN must exist and be served by akamai; the tree must span >= 3
	// hosting orgs total (paper: linkedin, akamai, edgecast, cdnetworks).
	var mediaN *analytics.TreeNode
	for _, c := range tree.Children {
		if c.Token == "mediaN" {
			mediaN = c
		}
	}
	if mediaN == nil {
		t.Fatalf("mediaN missing: %v", childTokens(tree))
	}
	if mediaN.DominantOrg() != "akamai" {
		t.Fatalf("mediaN org = %s", mediaN.DominantOrg())
	}
	if len(tree.Orgs) < 3 {
		t.Fatalf("linkedin hosting orgs = %v", tree.Orgs)
	}
}

func TestFigure8ZyngaTree(t *testing.T) {
	_, tree := shared.Figure8()
	if tree.DominantOrg() != "amazon" {
		t.Fatalf("zynga dominant host = %s (paper: Amazon with 86%% of flows)", tree.DominantOrg())
	}
	if len(tree.Orgs) < 3 {
		t.Fatalf("zynga hosting orgs = %v", tree.Orgs)
	}
}

func TestFigure9Shape(t *testing.T) {
	_, maps := shared.Figure9()
	fb := maps["facebook.com"]
	if fb.Rows[synth.NameEU1ADSL1]["SELF"] < 0.5 {
		t.Fatalf("facebook should be mostly self-hosted: %v", fb.Rows)
	}
	// Twitter leans on akamai more in EU than in US.
	tw := maps["twitter.com"]
	if tw.Rows[synth.NameEU1ADSL1]["akamai"] <= tw.Rows[synth.NameUS3G]["akamai"] {
		t.Fatalf("twitter akamai share EU (%v) should exceed US (%v)",
			tw.Rows[synth.NameEU1ADSL1]["akamai"], tw.Rows[synth.NameUS3G]["akamai"])
	}
	// Dailymotion rides dedibox everywhere.
	dm := maps["dailymotion.com"]
	for _, trace := range []string{synth.NameEU1ADSL1, synth.NameUS3G} {
		if dm.Rows[trace]["dedibox"] < 0.3 {
			t.Fatalf("dailymotion dedibox share in %s = %v", trace, dm.Rows[trace]["dedibox"])
		}
	}
}

func TestFigure10Cloud(t *testing.T) {
	_, cloud := shared.Figure10()
	if len(cloud) < 5 {
		t.Fatalf("cloud too small: %v", cloud)
	}
	// Tracker tokens must rank near the top (they dominate flows).
	foundTracker := false
	for _, tg := range cloud[:5] {
		if strings.Contains(tg.Token, "tracker") || strings.Contains(tg.Token, "bt") {
			foundTracker = true
		}
	}
	if !foundTracker {
		t.Fatalf("no tracker token in top 5: %v", cloud[:5])
	}
}

func TestFigure11Timeline(t *testing.T) {
	out, rep := shared.Figure11()
	if len(rep.Timeline) < 5 {
		t.Fatalf("too few trackers: %d", len(rep.Timeline))
	}
	if !strings.Contains(out, "#") {
		t.Fatal("timeline render empty")
	}
	// Persistent trackers span most bins; at least one should cover > half
	// the window.
	nBins := shared.Live().Scenario.Days * 6
	best := 0
	for _, bins := range rep.Timeline {
		if len(bins) > best {
			best = len(bins)
		}
	}
	if best < nBins/2 {
		t.Fatalf("most persistent tracker covers %d of %d bins", best, nBins)
	}
}

func TestFigure12Shape(t *testing.T) {
	_, cdfs := shared.Figure12And13()
	for _, name := range []string{synth.NameEU1FTTH, synth.NameUS3G} {
		first := cdfs[name][0]
		if first.Len() < 50 {
			t.Fatalf("%s: too few first-flow samples", name)
		}
		// Paper: ~90% within 1 s; ~5% above 10 s.
		if at1 := first.At(1); at1 < 0.6 {
			t.Fatalf("%s: first-flow <=1s = %v", name, at1)
		}
		tail := 1 - first.At(10)
		if tail < 0.005 || tail > 0.25 {
			t.Fatalf("%s: >10s tail = %v", name, tail)
		}
	}
	// FTTH is faster than 3G at the median.
	ftth := cdfs[synth.NameEU1FTTH][0].Quantile(0.5)
	mobile := cdfs[synth.NameUS3G][0].Quantile(0.5)
	if ftth >= mobile {
		t.Fatalf("FTTH median (%v) should beat 3G (%v)", ftth, mobile)
	}
}

func TestFigure14Diurnal(t *testing.T) {
	_, series := shared.Figure14()
	vals := series[synth.NameEU1ADSL2] // 24 h starting at midnight
	if len(vals) < 100 {
		t.Fatalf("series too short: %d", len(vals))
	}
	// Evening bins must out-rate the early-morning trough.
	avg := func(from, to int) float64 {
		s, n := 0.0, 0
		for i := from; i < to && i < len(vals); i++ {
			s += vals[i]
			n++
		}
		return s / float64(n)
	}
	night := avg(4*6, 6*6)     // 04:00–06:00
	evening := avg(19*6, 22*6) // 19:00–22:00
	if evening <= night {
		t.Fatalf("no diurnal pattern: evening=%v night=%v", evening, night)
	}
}

func TestAblationClistSize(t *testing.T) {
	_, res := shared.AblationClistSize([]int{64, 4096, 1 << 18})
	if res[64] >= res[1<<18] {
		t.Fatalf("tiny Clist (%v) should hurt vs large (%v)", res[64], res[1<<18])
	}
	if res[1<<18] < 0.5 {
		t.Fatalf("large Clist hit ratio too low: %v", res[1<<18])
	}
}

func TestAblationMultiLabel(t *testing.T) {
	_, confusion, _ := shared.AblationMultiLabel()
	// Paper §6: < 4% after excluding redirections. Allow some slack.
	if confusion > 0.10 {
		t.Fatalf("label confusion = %v", confusion)
	}
}

func TestAblationMapKindRenders(t *testing.T) {
	out := shared.AblationMapKind()
	if !strings.Contains(out, "hash") || !strings.Contains(out, "ordered") {
		t.Fatalf("output: %s", out)
	}
}

func TestAblationTagScoreRenders(t *testing.T) {
	out := shared.AblationTagScore(25)
	if !strings.Contains(out, "Eq.1") {
		t.Fatalf("output: %s", out)
	}
}

func TestPreFlowShareHigh(t *testing.T) {
	// Nearly all labeled flows are tagged at the SYN: the paper's
	// before-the-flow-begins property.
	if share := shared.PreFlowShare(synth.NameEU1FTTH); share < 0.95 {
		t.Fatalf("pre-flow share = %v", share)
	}
}

func TestTruthAccuracy(t *testing.T) {
	acc, n := shared.TruthAccuracy(synth.NameEU1ADSL2)
	if n < 1000 {
		t.Fatalf("too few scored flows: %d", n)
	}
	if acc < 0.9 {
		t.Fatalf("label accuracy vs ground truth = %v", acc)
	}
}

func childTokens(n *analytics.TreeNode) []string {
	var out []string
	for _, c := range n.Children {
		out = append(out, c.Token)
	}
	return out
}

func TestCrossVantageOneIngestion(t *testing.T) {
	multi := shared.TriVantage()
	if len(multi.Vantages) != 3 {
		t.Fatalf("vantages = %v", multi.Vantages)
	}
	var flowsSum uint64
	for _, name := range []string{"US", "EU1", "EU2"} {
		vr, ok := multi.PerVantage[name]
		if !ok {
			t.Fatalf("missing vantage %s", name)
		}
		if vr.Stats.Flows == 0 || vr.Stats.LabeledFlows == 0 {
			t.Errorf("%s: empty partition %+v", name, vr.Stats)
		}
		flowsSum += vr.Stats.Flows
		if got := len(multi.DB.ByVantage(name)); got != vr.DB.Len() {
			t.Errorf("%s: merged partition %d != per-vantage DB %d", name, got, vr.DB.Len())
		}
	}
	if multi.Stats.Flows != flowsSum {
		t.Errorf("aggregate flows %d != sum %d", multi.Stats.Flows, flowsSum)
	}

	out, pf := shared.CrossVantage()
	for _, want := range []string{"US", "EU1", "EU2", "Provider footprint", "CDN overlap", "facebook.com"} {
		if !strings.Contains(out, want) {
			t.Fatalf("CrossVantage output missing %q", want)
		}
	}
	if len(pf.Vantages) != 3 || len(pf.Orgs) == 0 {
		t.Fatalf("footprint = %+v", pf)
	}
	// Footprints must differ by geography (the paper's point): at least
	// one hosting org's share differs noticeably between US and EU2.
	differs := false
	for _, org := range pf.Orgs {
		if diff := pf.Share["US"][org] - pf.Share["EU2"][org]; diff > 0.01 || diff < -0.01 {
			differs = true
			break
		}
	}
	if !differs {
		t.Error("US and EU2 provider footprints are identical — geography lost")
	}
}
