package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"repro/internal/analytics"
	"repro/internal/analytics/stream"
	"repro/internal/synth"
)

// sketch.go drives the SK experiment: run the sketch-based streaming
// analytics and their exact references over the same scenarios and
// check every result stays within the documented error bounds — the
// human-readable companion to the differential fuzz tests.

// sketchTolerance is how many standard errors an HLL estimate may stray
// from the exact cardinality before the experiment fails. 5σ keeps the
// check meaningful while making seed-dependent flakes (~1e-6 per
// comparison if the estimator behaved gaussianly) effectively impossible.
const sketchTolerance = 5.0

// SketchVsExact compares the standard streaming query set against the
// exact references on every named scenario. The returned ok is false if
// any sketch result violated its documented bound: a space-saving count
// whose [count-err, count] interval misses the true count, a heavy
// hitter above Observed/Capacity the sketch lost, an HLL estimate more
// than sketchTolerance standard errors off, or a coverage table that is
// not byte-identical.
func (s *Suite) SketchVsExact() (string, bool) {
	var b strings.Builder
	ok := true
	fmt.Fprintf(&b, "Sketch vs exact analytics (space-saving %d counters, HLL 2^%d registers, %.0fσ bound)\n",
		stream.DefaultCounters, stream.DefaultHLLPrecision, sketchTolerance)
	fmt.Fprintf(&b, "%-10s %-22s %9s %9s %10s %s\n", "Trace", "Query", "Exact", "Sketch", "MaxErr", "Status")
	for _, name := range synth.ScenarioNames {
		run := s.Run(name)
		lookup := analytics.OrgLookupDB(run.Trace.OrgDB)
		exact := analytics.NewPipeline(
			analytics.NewExactTopDomains(stream.DefaultTopK),
			analytics.NewExactTopSLDs(stream.DefaultTopK),
			analytics.NewExactTopOrgs(lookup, stream.DefaultTopK),
			analytics.NewExactSLDFootprint(stream.DefaultTopK),
			analytics.NewExactCoverage(0),
		)
		sk := analytics.NewPipeline(
			stream.NewTopDomains(stream.DefaultTopK, stream.DefaultCounters),
			stream.NewTopSLDs(stream.DefaultTopK, stream.DefaultCounters),
			stream.NewTopOrgs(lookup, stream.DefaultTopK, stream.DefaultCounters),
			stream.NewSLDFootprint(stream.DefaultTopK, stream.DefaultMaxSLDs, stream.DefaultHLLPrecision),
			stream.NewCoverage(0),
		)
		exact.ObserveDB(run.DB)
		sk.ObserveDB(run.DB)

		for _, qname := range []string{"top_domains", "top_slds", "top_orgs"} {
			line, good := compareTopK(exact, sk, qname)
			fmt.Fprintf(&b, "%-10s %s\n", name, line)
			ok = ok && good
		}
		line, good := compareFootprint(exact, sk)
		fmt.Fprintf(&b, "%-10s %s\n", name, line)
		ok = ok && good
		line, good = compareCoverage(exact, sk)
		fmt.Fprintf(&b, "%-10s %s\n", name, line)
		ok = ok && good
	}
	if ok {
		b.WriteString("all sketches within documented error bounds\n")
	} else {
		b.WriteString("BOUND VIOLATION: see FAIL rows above\n")
	}
	return b.String(), ok
}

func status(good bool) string {
	if good {
		return "ok"
	}
	return "FAIL"
}

// compareTopK checks the space-saving guarantees for one query name:
// every sketched count brackets the true count within its error bound,
// and every exact heavy hitter above the N/m threshold is tracked.
func compareTopK(exact, sk *analytics.Pipeline, qname string) (string, bool) {
	eq, _ := exact.Query(qname)
	sq, _ := sk.Query(qname)
	et := eq.Snapshot().(analytics.TopKResult)
	st := sq.Snapshot().(analytics.TopKResult)

	trueCounts := make(map[string]uint64, len(et.Entries))
	for _, e := range et.Entries {
		trueCounts[e.Key] = e.Count
	}
	sketched := make(map[string]analytics.TopEntry, len(st.Entries))
	var maxErr uint64
	good := et.Observed == st.Observed
	for _, e := range st.Entries {
		sketched[e.Key] = e
		if e.Err > maxErr {
			maxErr = e.Err
		}
		// The sketch may overestimate by at most Err; it never
		// underestimates. Only keys the exact query ranked are checkable
		// here (the exact snapshot is already truncated to k), which is
		// what the bound is about: the keys that matter.
		if tc, known := trueCounts[e.Key]; known {
			if tc > e.Count || tc < e.Count-e.Err {
				good = false
			}
		}
	}
	// Guarantee: any key with true count > Observed/Capacity is tracked.
	threshold := st.Observed / uint64(st.Capacity)
	//dnhunter:unordered-ok order-insensitive check: good only ever flips to false
	for key, tc := range trueCounts {
		if tc > threshold {
			if _, tracked := sketched[key]; !tracked {
				good = false
			}
		}
	}
	return fmt.Sprintf("%-22s %9d %9d %10d %s", qname, et.Observed, st.Observed, maxErr, status(good)), good
}

// compareFootprint checks every sketched per-SLD server estimate (and
// the union) against the exact cardinality, within sketchTolerance
// standard errors.
func compareFootprint(exact, sk *analytics.Pipeline) (string, bool) {
	eq, _ := exact.Query("sld_server_footprint")
	sq, _ := sk.Query("sld_server_footprint")
	ec := eq.Snapshot().(analytics.CardinalityResult)
	sc := sq.Snapshot().(analytics.CardinalityResult)

	within := func(est, truth float64) bool {
		slack := sketchTolerance * sc.StdError * truth
		if slack < 2 { // tiny sets: the estimator is integral-ish, allow ±2
			slack = 2
		}
		diff := est - truth
		if diff < 0 {
			diff = -diff
		}
		return diff <= slack
	}
	truthPer := make(map[string]float64, len(ec.Entries))
	for _, e := range ec.Entries {
		truthPer[e.Key] = e.Count
	}
	good := sc.DroppedFlows == 0 && within(sc.Total, ec.Total)
	var maxRel float64
	for _, e := range sc.Entries {
		truth, known := truthPer[e.Key]
		if !known {
			continue // ranked differently under estimation noise
		}
		if !within(e.Count, truth) {
			good = false
		}
		if truth > 0 {
			rel := (e.Count - truth) / truth
			if rel < 0 {
				rel = -rel
			}
			if rel > maxRel {
				maxRel = rel
			}
		}
	}
	return fmt.Sprintf("%-22s %9.0f %9.1f %9.1f%% %s",
		"sld_server_footprint", ec.Total, sc.Total, 100*maxRel, status(good)), good
}

// compareCoverage demands byte-identical JSON: the streaming coverage
// counters are not approximate.
func compareCoverage(exact, sk *analytics.Pipeline) (string, bool) {
	eq, _ := exact.Query("coverage")
	sq, _ := sk.Query("coverage")
	ej, _ := json.Marshal(eq.Snapshot())
	sj, _ := json.Marshal(sq.Snapshot())
	good := string(ej) == string(sj)
	return fmt.Sprintf("%-22s %9s %9s %10s %s", "coverage", "-", "-", "exact", status(good)), good
}
