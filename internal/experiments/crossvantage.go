package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/synth"
)

// crossvantage.go drives the multi-source Engine over the TRIVANTAGE
// scenario — three geographies expanded from one seed — and reproduces the
// paper's cross-vantage comparisons (provider footprints and CDN overlap à
// la Figs. 7-9 / Tables 5-8) from a single ingestion run instead of N runs
// plus hand-merging.

// CrossVantageSLDs are the content organizations compared across vantage
// points (the Fig. 9 set).
var CrossVantageSLDs = []string{"facebook.com", "twitter.com", "dailymotion.com"}

// TriVantage runs the TRIVANTAGE scenario once — all three vantages ingested
// concurrently by one Engine.RunSources call — and caches the result.
func (s *Suite) TriVantage() *core.MultiResult {
	if s.tri != nil {
		return s.tri
	}
	var sources []core.NamedSource
	for _, sc := range synth.TriVantageScenarios(s.Scale, s.Seed) {
		tr := synth.Generate(sc)
		s.triTraces = append(s.triTraces, tr)
		sources = append(sources, core.NamedSource{Name: sc.Name, Src: tr.Source(), Truth: tr.TruthFunc()})
	}
	eng := core.NewEngine(core.EngineConfig{Shards: s.Shards})
	multi, err := eng.RunSources(context.Background(), sources)
	if err != nil {
		panic(err) // in-memory sources cannot fail
	}
	s.tri = multi
	return multi
}

// triVantageData adapts the cached TRIVANTAGE run for the cross-vantage
// analytics: each vantage pairs its flow partition with its own geo's
// IP → organization table.
func (s *Suite) triVantageData() []analytics.VantageData {
	multi := s.TriVantage()
	out := make([]analytics.VantageData, 0, len(multi.Vantages))
	for i, name := range multi.Vantages {
		out = append(out, analytics.VantageData{
			Name: name,
			DB:   multi.PerVantage[name].DB,
			Orgs: s.triTraces[i].OrgDB,
		})
	}
	return out
}

// CrossVantage renders the multi-vantage report: per-vantage ingestion
// summary, the provider-footprint table, and per-SLD CDN-overlap
// comparisons, all from the single TRIVANTAGE run.
func (s *Suite) CrossVantage() (string, *analytics.ProviderFootprint) {
	multi := s.TriVantage()
	data := s.triVantageData()
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-vantage analysis (TRIVANTAGE, one RunSources ingestion, %d vantages)\n",
		len(multi.Vantages))
	fmt.Fprintf(&b, "%-8s %10s %10s %10s %10s\n", "Vantage", "Flows", "Labeled", "DNSresp", "Clients")
	for _, name := range multi.Vantages {
		st := multi.PerVantage[name].Stats
		fmt.Fprintf(&b, "%-8s %10d %10d %10d %10d\n",
			name, st.Flows, st.LabeledFlows, st.DNSResponses, st.Resolver.ClientsPeak)
	}
	fmt.Fprintf(&b, "%-8s %10d %10d %10d\n", "TOTAL",
		multi.Stats.Flows, multi.Stats.LabeledFlows, multi.Stats.DNSResponses)
	b.WriteByte('\n')

	// One pipeline, one pass: the provider footprint and every per-SLD
	// overlap query observe the same single walk over the vantage
	// databases (the deprecated free functions re-walked them per call).
	lookup := analytics.OrgLookupVantages(data)
	names := analytics.VantageNames(data)
	queries := []analytics.Query{analytics.NewExactProviderUsage(lookup, 10, names...)}
	for _, sld := range CrossVantageSLDs {
		queries = append(queries, analytics.NewExactCrossVantage(sld, lookup, names...))
	}
	pipe := analytics.NewPipeline(queries...)
	analytics.ObserveVantages(pipe, data)

	b.WriteString("Provider footprint (share of each vantage's labeled flows per hosting org)\n")
	pf := pipe.Snapshot()[0].Result.(*analytics.ProviderFootprint)
	b.WriteString(pf.Render())
	b.WriteByte('\n')

	b.WriteString("CDN overlap per content organization\n")
	for _, sld := range CrossVantageSLDs {
		q, _ := pipe.Query("cross_vantage:" + sld)
		b.WriteString(q.Snapshot().(*analytics.CrossVantage).Render())
	}
	return b.String(), pf
}

// CrossVantageData exposes the per-vantage analytics inputs for assertions.
func (s *Suite) CrossVantageData() []analytics.VantageData { return s.triVantageData() }
