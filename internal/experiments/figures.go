package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/stats"
	"repro/internal/synth"
)

func newRNG(seed uint64) *stats.RNG { return stats.NewRNG(seed) }

// Figure3 reproduces the fan-out CDFs: serverIPs per FQDN and FQDNs per
// serverIP (EU2-ADSL).
func (s *Suite) Figure3() (string, float64, float64) {
	db := s.Run(synth.NameEU2ADSL).DB
	ips, fqdns := analytics.FanoutCDFs(db)
	fqdnSingle, ipSingle := analytics.SingletonShares(db)
	var b strings.Builder
	b.WriteString("Figure 3: FQDN <-> serverIP fan-out (EU2-ADSL)\n")
	fmt.Fprintf(&b, "  FQDNs served by exactly one IP: %.0f%% (paper: 82%%)\n", 100*fqdnSingle)
	fmt.Fprintf(&b, "  IPs serving exactly one FQDN:  %.0f%% (paper: 73%%)\n", 100*ipSingle)
	b.WriteString("  CDF(#IP per FQDN):\n")
	for _, x := range []float64{1, 2, 10, 100} {
		fmt.Fprintf(&b, "    <=%4.0f: %.3f\n", x, ips.At(x))
	}
	b.WriteString("  CDF(#FQDN per IP):\n")
	for _, x := range []float64{1, 2, 10, 100} {
		fmt.Fprintf(&b, "    <=%4.0f: %.3f\n", x, fqdns.At(x))
	}
	return b.String(), fqdnSingle, ipSingle
}

// Figure4SLDs are the second-level domains plotted in Fig. 4.
var Figure4SLDs = []string{"twitter.com", "youtube.com", "fbcdn.net", "facebook.com", "blogspot.com"}

// Figure4 reproduces the per-SLD server pool time series (EU1-ADSL2, 10-min
// bins).
func (s *Suite) Figure4() (string, map[string][]int) {
	db := s.Run(synth.NameEU1ADSL2).DB
	series := analytics.ServerTimeseries(db, Figure4SLDs, 10*time.Minute)
	var b strings.Builder
	b.WriteString("Figure 4: distinct serverIPs per 2nd-level domain, 10-min bins (EU1-ADSL2)\n")
	for _, sld := range Figure4SLDs {
		vals := toFloats(series[sld])
		fmt.Fprintf(&b, "  %-14s max=%4.0f  %s\n", sld, maxF(vals), stats.Sparkline(vals))
	}
	return b.String(), series
}

// Figure5Orgs are the hosting orgs plotted in Fig. 5.
var Figure5Orgs = []string{"akamai", "amazon", "google", "level 3", "leaseweb", "cotendo", "edgecast", "microsoft"}

// Figure5 reproduces the per-CDN active FQDN time series.
func (s *Suite) Figure5() (string, map[string][]int) {
	run := s.Run(synth.NameEU1ADSL2)
	series := analytics.CDNTimeseries(run.DB, run.Trace.OrgDB, Figure5Orgs, 10*time.Minute)
	var b strings.Builder
	b.WriteString("Figure 5: distinct FQDNs served per CDN, 10-min bins (EU1-ADSL2)\n")
	for _, org := range Figure5Orgs {
		vals := toFloats(series[org])
		fmt.Fprintf(&b, "  %-10s max=%4.0f  %s\n", org, maxF(vals), stats.Sparkline(vals))
	}
	return b.String(), series
}

// Figure6 reproduces the unique FQDN / SLD / serverIP birth processes over
// the live window.
func (s *Suite) Figure6() (string, *analytics.BirthSeries) {
	bs := analytics.BirthProcess(s.Live(), 4*time.Hour)
	var b strings.Builder
	n := len(bs.FQDN)
	b.WriteString("Figure 6: unique-entity birth processes (event-mode live trace)\n")
	fmt.Fprintf(&b, "  final: FQDN=%d  SLD=%d  serverIP=%d\n", bs.FQDN[n-1], bs.SLD[n-1], bs.Server[n-1])
	fmt.Fprintf(&b, "  late/early growth ratio: FQDN=%.2f  SLD=%.2f  serverIP=%.2f\n",
		bs.GrowthRatio(bs.FQDN), bs.GrowthRatio(bs.SLD), bs.GrowthRatio(bs.Server))
	fmt.Fprintf(&b, "  FQDN   %s\n", stats.Sparkline(toFloats(bs.FQDN)))
	fmt.Fprintf(&b, "  SLD    %s\n", stats.Sparkline(toFloats(bs.SLD)))
	fmt.Fprintf(&b, "  server %s\n", stats.Sparkline(toFloats(bs.Server)))
	return b.String(), bs
}

// Figure7 renders the linkedin.com domain-structure tree (US-3G).
func (s *Suite) Figure7() (string, *analytics.TreeNode) {
	run := s.Run(synth.NameUS3G)
	tree := analytics.DomainTree(run.DB, run.Trace.OrgDB, "linkedin.com")
	return "Figure 7: linkedin.com domain structure (US-3G)\n" + tree.Render(), tree
}

// Figure8 renders the zynga.com domain-structure tree (US-3G).
func (s *Suite) Figure8() (string, *analytics.TreeNode) {
	run := s.Run(synth.NameUS3G)
	tree := analytics.DomainTree(run.DB, run.Trace.OrgDB, "zynga.com")
	return "Figure 8: zynga.com domain structure (US-3G)\n" + tree.Render(), tree
}

// Figure9SLDs lists the content orgs of Fig. 9 with their self-hosting
// provider names.
var Figure9SLDs = map[string]string{
	"facebook.com":    "facebook",
	"twitter.com":     "twitter",
	"dailymotion.com": "dailymotion",
}

// Figure9 reproduces the org × CDN access heat maps across three vantage
// points.
func (s *Suite) Figure9() (string, map[string]*analytics.Heatmap) {
	traces := []string{synth.NameEU1ADSL1, synth.NameUS3G, synth.NameEU2ADSL}
	out := make(map[string]*analytics.Heatmap)
	var b strings.Builder
	b.WriteString("Figure 9: organizations served by CDNs per vantage point\n")
	var slds []string
	for sld := range Figure9SLDs {
		slds = append(slds, sld)
	}
	sort.Strings(slds)
	for _, sld := range slds {
		per := make(map[string]*analytics.SpatialResult)
		for _, tn := range traces {
			run := s.Run(tn)
			per[tn] = analytics.SpatialDiscovery(run.DB, run.Trace.OrgDB, sld)
		}
		h := analytics.BuildHeatmap(sld, Figure9SLDs[sld], per)
		out[sld] = h
		b.WriteString(h.Render())
		b.WriteByte('\n')
	}
	return b.String(), out
}

// Figure10 renders the appspot tag cloud.
func (s *Suite) Figure10() (string, []analytics.TagScore) {
	cloud := analytics.TagCloud(s.Live().Flows, "appspot.com", 15)
	var b strings.Builder
	b.WriteString("Figure 10: appspot.com service tag cloud (top 15)\n  ")
	b.WriteString(analytics.FormatTags(cloud))
	b.WriteByte('\n')
	return b.String(), cloud
}

// Figure11 renders the tracker activity timeline.
func (s *Suite) Figure11() (string, *analytics.AppspotReport) {
	rep := analytics.AppspotTracking(s.Live(), 4*time.Hour)
	var b strings.Builder
	b.WriteString("Figure 11: BitTorrent trackers on appspot, activity per 4-h bin\n")
	ids := make([]int, 0, len(rep.Timeline))
	for id := range rep.Timeline {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	days := s.Live().Scenario.Days
	nBins := days * 6
	for _, id := range ids {
		row := make([]byte, nBins)
		for i := range row {
			row[i] = '.'
		}
		for _, bin := range rep.Timeline[id] {
			if bin < nBins {
				row[bin] = '#'
			}
		}
		fmt.Fprintf(&b, "  %2d %s\n", id, row)
	}
	return b.String(), rep
}

// Figure12And13 reproduces the first-flow and any-flow delay CDFs for every
// trace.
func (s *Suite) Figure12And13() (string, map[string][2]*stats.CDF) {
	out := make(map[string][2]*stats.CDF)
	var b strings.Builder
	b.WriteString("Figures 12/13: DNS-to-flow delay CDFs (seconds)\n")
	fmt.Fprintf(&b, "  %-10s %18s %18s %18s\n", "Trace", "first<=1s", "first<=10s", "any<=3600s")
	for _, name := range synth.ScenarioNames {
		first, any := analytics.DelayCDFs(s.Run(name).DB)
		out[name] = [2]*stats.CDF{first, any}
		if first.Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-10s %17.0f%% %17.0f%% %17.0f%%\n",
			name, 100*first.At(1), 100*first.At(10), 100*any.At(3600))
	}
	return b.String(), out
}

// Figure14 reproduces the DNS responses-per-10-minute series.
func (s *Suite) Figure14() (string, map[string][]float64) {
	out := make(map[string][]float64)
	var b strings.Builder
	b.WriteString("Figure 14: DNS responses per 10-min bin\n")
	for _, name := range synth.ScenarioNames {
		vals := analytics.DNSRate(s.Run(name).DNSTimes, 10*time.Minute)
		out[name] = vals
		fmt.Fprintf(&b, "  %-10s max=%6.0f  %s\n", name, maxF(vals), stats.Sparkline(vals))
	}
	return b.String(), out
}

func toFloats(xs []int) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = float64(x)
	}
	return out
}

func maxF(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
