// Package experiments regenerates every table and figure of the paper's
// evaluation (§5, §6) on synthetic traces: the per-experiment index lives
// in DESIGN.md, the measured-vs-paper record in EXPERIMENTS.md. Both
// cmd/experiments and the root bench harness drive this package.
package experiments

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/synth"
)

// Warmup discards flows from the first minutes, as the paper does for its
// hit-ratio numbers (§3.1.2).
const Warmup = 5 * time.Minute

// ScenarioRun bundles one generated trace with its pipeline output.
type ScenarioRun struct {
	Trace    *synth.Trace
	DB       *flowdb.DB
	Stats    core.Stats
	DNSTimes []time.Duration
}

// Suite lazily generates and runs scenarios, caching results so the table
// and figure experiments share work.
type Suite struct {
	Scale float64
	Seed  uint64
	// Shards parallelizes the pipeline runs (0/1 = exact single-threaded
	// reproduction, the default; any value yields identical flow sets and
	// aggregate stats).
	Shards int

	runs map[string]*ScenarioRun
	live *synth.EventTrace
	// LiveDays shortens the 18-day window for quick runs (0 = 18).
	LiveDays int
	// tri caches the multi-vantage TRIVANTAGE ingestion (see
	// crossvantage.go); triTraces keeps the generated traces in vantage
	// order for their OrgDB sidecars.
	tri       *core.MultiResult
	triTraces []*synth.Trace
}

// NewSuite creates a suite at the given scale (1.0 ≈ full laptop scale).
func NewSuite(scale float64, seed uint64) *Suite {
	return &Suite{Scale: scale, Seed: seed, runs: make(map[string]*ScenarioRun)}
}

// Run returns the pipeline output for a named scenario, generating it on
// first use.
func (s *Suite) Run(name string) *ScenarioRun {
	if r, ok := s.runs[name]; ok {
		return r
	}
	tr := synth.Generate(synth.NamedScenario(name, s.Scale, s.Seed))
	run := &ScenarioRun{Trace: tr}
	eng := core.NewEngine(core.EngineConfig{
		Shards: s.Shards,
		Truth:  tr.TruthFunc(),
		Sink: &core.FuncSink{DNS: func(e core.DNSEvent) {
			run.DNSTimes = append(run.DNSTimes, e.At)
		}},
	})
	res, err := eng.Run(context.Background(), tr.Source())
	if err != nil {
		panic(err) // in-memory source cannot fail
	}
	if eng.Shards() > 1 {
		// Shards deliver DNS events interleaved; restore trace order.
		sort.Slice(run.DNSTimes, func(i, j int) bool { return run.DNSTimes[i] < run.DNSTimes[j] })
	}
	run.DB = res.DB
	run.Stats = res.Stats
	s.runs[name] = run
	return run
}

// Live returns the 18-day event-mode trace, generating it on first use.
func (s *Suite) Live() *synth.EventTrace {
	if s.live == nil {
		sc := synth.DefaultLive18d(s.Seed)
		if s.LiveDays > 0 {
			sc.Days = s.LiveDays
		}
		if s.Scale < 1 {
			sc.Clients = int(float64(sc.Clients) * s.Scale)
			sc.SessionsPerDay = int(float64(sc.SessionsPerDay) * s.Scale)
			if sc.Clients < 5 {
				sc.Clients = 5
			}
			if sc.SessionsPerDay < 500 {
				sc.SessionsPerDay = 500
			}
		}
		s.live = synth.GenerateEvents(sc)
	}
	return s.live
}

// Table1 reproduces the dataset-description table: duration, peak DNS
// response rate, and TCP flow count per trace.
func (s *Suite) Table1() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1: Dataset description (synthetic, scale %.2f)\n", s.Scale)
	fmt.Fprintf(&b, "%-10s %9s %14s %10s\n", "Trace", "Duration", "PeakDNS/min", "TCPflows")
	for _, name := range synth.ScenarioNames {
		run := s.Run(name)
		peak := 0.0
		for _, v := range analytics.DNSRate(run.DNSTimes, time.Minute) {
			if v > peak {
				peak = v
			}
		}
		fmt.Fprintf(&b, "%-10s %9s %12.0f/m %10d\n",
			name, run.Trace.Scenario.Duration, peak, run.DB.Len())
	}
	return b.String()
}

// Table2 reproduces the DNS resolver hit ratio per protocol.
func (s *Suite) Table2() string {
	var b strings.Builder
	b.WriteString("Table 2: DNS Resolver hit ratio (5 min warm-up)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %14s\n", "Trace", "HTTP", "TLS", "P2P")
	for _, name := range synth.ScenarioNames {
		run := s.Run(name)
		cov := run.DB.Coverage(Warmup)
		cell := func(p flows.L7Proto) string {
			return fmt.Sprintf("%3.0f%% (%d)", 100*cov.Ratio(p), cov.Total[p])
		}
		fmt.Fprintf(&b, "%-10s %14s %14s %14s\n",
			name, cell(flows.L7HTTP), cell(flows.L7TLS), cell(flows.L7P2P))
	}
	return b.String()
}

// Table2Data exposes the hit ratios for assertions.
func (s *Suite) Table2Data(name string) map[flows.L7Proto]float64 {
	cov := s.Run(name).DB.Coverage(Warmup)
	out := make(map[flows.L7Proto]float64)
	for _, p := range []flows.L7Proto{flows.L7HTTP, flows.L7TLS, flows.L7P2P} {
		out[p] = cov.Ratio(p)
	}
	return out
}

// Table3 reproduces DN-Hunter vs reverse lookup on 1000 sampled servers.
func (s *Suite) Table3() (string, analytics.CompareResult) {
	run := s.Run(synth.NameEU1ADSL2)
	res := analytics.ReverseLookupCompare(run.DB, run.Trace.PTRZone, 1000, newRNG(s.Seed))
	var b strings.Builder
	b.WriteString("Table 3: DN-Hunter vs. active reverse lookup (EU1-ADSL2)\n")
	for _, m := range []analytics.MatchClass{analytics.MatchExact, analytics.MatchSLD, analytics.MatchDifferent, analytics.MatchNone} {
		fmt.Fprintf(&b, "  %-24s %5.0f%%\n", m, 100*res.Fraction(m))
	}
	return b.String(), res
}

// Table4 reproduces certificate inspection vs DN-Hunter on TLS flows.
func (s *Suite) Table4() (string, analytics.CompareResult) {
	run := s.Run(synth.NameEU1ADSL2)
	res := analytics.CertCompare(run.DB.All())
	var b strings.Builder
	b.WriteString("Table 4: TLS certificate inspection vs. DN-Hunter (EU1-ADSL2)\n")
	rows := []struct {
		label string
		class analytics.MatchClass
	}{
		{"Certificate equal FQDN", analytics.MatchExact},
		{"Generic certificate", analytics.MatchGeneric},
		{"Same 2nd-level", analytics.MatchSLD},
		{"Totally different", analytics.MatchDifferent},
		{"No certificate", analytics.MatchNone},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %5.0f%%\n", r.label, 100*res.Fraction(r.class))
	}
	return b.String(), res
}

// Table5 reproduces the top-10 second-level domains on Amazon EC2 for the
// US and EU vantage points.
func (s *Suite) Table5() string {
	var b strings.Builder
	b.WriteString("Table 5: Top-10 domains hosted on the Amazon cloud\n")
	us, eu := s.Table5Data()
	fmt.Fprintf(&b, "%-4s %-24s %5s   %-24s %5s\n", "Rank", "US-3G", "%", "EU1-ADSL1", "%")
	for i := 0; i < 10; i++ {
		usName, usShare := "-", 0.0
		if i < len(us) {
			usName, usShare = us[i].Name, us[i].Share
		}
		euName, euShare := "-", 0.0
		if i < len(eu) {
			euName, euShare = eu[i].Name, eu[i].Share
		}
		fmt.Fprintf(&b, "%-4d %-24s %4.0f%%   %-24s %4.0f%%\n", i+1, usName, 100*usShare, euName, 100*euShare)
	}
	return b.String()
}

// Table5Data returns the ranked SLD lists for assertions, via the
// content-discovery Query (one ObserveDB pass per vantage).
func (s *Suite) Table5Data() (us, eu []analytics.ContentShare) {
	top := func(name string) []analytics.ContentShare {
		run := s.Run(name)
		p := analytics.NewPipeline(analytics.NewExactTopContent("amazon", analytics.OrgLookupDB(run.Trace.OrgDB), analytics.BySLD, 10))
		p.ObserveDB(run.DB)
		cs, _ := p.Snapshot()[0].Result.([]analytics.ContentShare)
		return cs
	}
	return top(synth.NameUS3G), top(synth.NameEU1ADSL1)
}

// Table6Ports are the well-known ports of Table 6 (EU1-FTTH).
var Table6Ports = []uint16{25, 110, 143, 554, 587, 995, 1863}

// Table7Ports are the ephemeral service ports of Table 7 (US-3G).
var Table7Ports = []uint16{1080, 1337, 2710, 5050, 5190, 5222, 5223, 5228, 6969, 12043, 12046, 18182}

// tagTable renders one keyword-extraction table.
func (s *Suite) tagTable(title, scenario string, ports []uint16) string {
	run := s.Run(scenario)
	var b strings.Builder
	fmt.Fprintf(&b, "%s (%s)\n%-6s %-58s %s\n", title, scenario, "Port", "Keywords", "GT")
	for _, port := range ports {
		tags := analytics.ExtractTags(run.DB, port, 5)
		gt := run.Trace.ServiceGT[port]
		fmt.Fprintf(&b, "%-6d %-58s %s\n", port, analytics.FormatTags(tags), gt)
	}
	return b.String()
}

// Table6 reproduces keyword extraction on well-known ports.
func (s *Suite) Table6() string {
	return s.tagTable("Table 6: Keyword extraction, well-known ports", synth.NameEU1FTTH, Table6Ports)
}

// Table7 reproduces keyword extraction on frequently used ephemeral ports.
func (s *Suite) Table7() string {
	return s.tagTable("Table 7: Keyword extraction, ephemeral ports", synth.NameUS3G, Table7Ports)
}

// Table8 reproduces the appspot service mix from the live deployment.
func (s *Suite) Table8() (string, *analytics.AppspotReport) {
	rep := analytics.AppspotTracking(s.Live(), 4*time.Hour)
	var b strings.Builder
	b.WriteString("Table 8: Appspot services (event-mode live trace)\n")
	fmt.Fprintf(&b, "  %-22s %9s %8s %10s %10s\n", "Service type", "Services", "Flows", "C2S bytes", "S2C bytes")
	fmt.Fprintf(&b, "  %-22s %9d %8d %10d %10d\n", "BitTorrent trackers",
		rep.TrackerServices, rep.TrackerFlows, rep.TrackerC2S, rep.TrackerS2C)
	fmt.Fprintf(&b, "  %-22s %9d %8d %10d %10d\n", "General services",
		rep.GeneralServices, rep.GeneralFlows, rep.GeneralC2S, rep.GeneralS2C)
	return b.String(), rep
}

// Table9 reproduces the useless-DNS fractions.
func (s *Suite) Table9() string {
	var b strings.Builder
	b.WriteString("Table 9: Fraction of useless DNS resolutions\n")
	for _, name := range synth.ScenarioNames {
		fmt.Fprintf(&b, "  %-10s %4.0f%%\n", name, 100*s.Run(name).Stats.UselessDNSFraction())
	}
	return b.String()
}
