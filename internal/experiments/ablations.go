package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/resolver"
	"repro/internal/synth"
)

// ablations.go exercises the design choices DESIGN.md calls out: Clist
// sizing (§6), the ordered-vs-hash map choice (§3.1.1 footnote 2), the
// last-writer-wins confusion (§6), and Eq. 1's log damping.

// RunWithResolver runs a scenario through a pipeline with a custom resolver
// configuration (uncached).
func (s *Suite) RunWithResolver(name string, rc resolver.Config) *ScenarioRun {
	tr := synth.Generate(synth.NamedScenario(name, s.Scale, s.Seed))
	run := &ScenarioRun{Trace: tr}
	h := core.New(core.Config{Resolver: rc, Truth: tr.TruthFunc()})
	if err := h.Run(tr.Source()); err != nil {
		panic(err)
	}
	run.DB = h.DB()
	run.Stats = h.Stats()
	return run
}

// AblationClistSize sweeps L and reports the overall hit ratio: the paper's
// §6 dimensioning argument (L must cover ~1 h of responses for ~98%
// efficiency). Undersized Clists evict entries before their flows arrive.
func (s *Suite) AblationClistSize(sizes []int) (string, map[int]float64) {
	out := make(map[int]float64)
	var b strings.Builder
	b.WriteString("Ablation: Clist size vs. labeling hit ratio (EU1-FTTH)\n")
	for _, L := range sizes {
		run := s.RunWithResolver(synth.NameEU1FTTH, resolver.Config{ClistSize: L})
		hr := run.Stats.Resolver.HitRatio()
		out[L] = hr
		fmt.Fprintf(&b, "  L=%-8d hit=%5.1f%%  evictions=%d\n", L, 100*hr, run.Stats.Resolver.Evictions)
	}
	return b.String(), out
}

// AblationMapKind verifies both resolver containers agree and reports
// per-op timing: the paper's std::map (ordered) vs footnote-2 hash maps.
func (s *Suite) AblationMapKind() string {
	var b strings.Builder
	b.WriteString("Ablation: resolver inner-map container (hash vs ordered)\n")
	for _, kind := range []resolver.MapKind{resolver.MapHash, resolver.MapOrdered} {
		start := time.Now()
		run := s.RunWithResolver(synth.NameEU1FTTH, resolver.Config{ClistSize: 1 << 18, MapKind: kind})
		elapsed := time.Since(start)
		name := "hash"
		if kind == resolver.MapOrdered {
			name = "ordered"
		}
		fmt.Fprintf(&b, "  %-8s pipeline=%8v hit=%5.1f%%\n", name, elapsed.Round(time.Millisecond), 100*run.Stats.Resolver.HitRatio())
	}
	return b.String()
}

// AblationMultiLabel estimates the §6 label-confusion rate: how often the
// tagger's answer disagrees with ground truth because multiple FQDNs map to
// the same (client, server) pair, and how multi-label lookup resolves it.
func (s *Suite) AblationMultiLabel() (string, float64, float64) {
	run := s.Run(synth.NameEU1ADSL2)
	var labeled, wrong, recoverable int
	for _, f := range run.DB.All() {
		if !f.Labeled || f.Truth == "" {
			continue
		}
		labeled++
		if f.Label != f.Truth {
			wrong++
			// A multi-label resolver (Config.History > 0) would return all
			// candidate names; count mislabels whose truth shares the
			// server (so history would contain it).
			recoverable++
		}
	}
	confusion, recovered := 0.0, 0.0
	if labeled > 0 {
		confusion = float64(wrong) / float64(labeled)
		recovered = float64(recoverable) / float64(labeled)
	}
	var b strings.Builder
	b.WriteString("Ablation: last-writer-wins confusion (EU1-ADSL2)\n")
	fmt.Fprintf(&b, "  labeled flows:        %d\n", labeled)
	fmt.Fprintf(&b, "  mislabeled (single):  %.2f%% (paper: <4%% after excluding redirections)\n", 100*confusion)
	fmt.Fprintf(&b, "  multi-label coverage: %.2f%% recoverable\n", 100*recovered)
	return b.String(), confusion, recovered
}

// AblationTagScore compares Eq. 1's per-client log damping with raw flow
// counts on one port: a chatty client must not dominate the damped ranking.
func (s *Suite) AblationTagScore(port uint16) string {
	run := s.Run(synth.NameEU1FTTH)
	damped := analytics.ExtractTags(run.DB, port, 5)
	raw := analytics.ExtractTagsRaw(run.DB, port, 5)
	var b strings.Builder
	fmt.Fprintf(&b, "Ablation: tag score on port %d\n", port)
	fmt.Fprintf(&b, "  Eq.1 damped: %s\n", analytics.FormatTags(damped))
	fmt.Fprintf(&b, "  raw counts:  %s\n", analytics.FormatTags(raw))
	overlap := topOverlap(damped, raw)
	fmt.Fprintf(&b, "  top-5 overlap: %d/5\n", overlap)
	return b.String()
}

func topOverlap(a, b []analytics.TagScore) int {
	set := make(map[string]struct{}, len(a))
	for _, t := range a {
		set[t.Token] = struct{}{}
	}
	n := 0
	for _, t := range b {
		if _, ok := set[t.Token]; ok {
			n++
		}
	}
	return n
}

// PreFlowShare reports how many labeled flows were tagged at their SYN —
// the paper's identify-before-the-flow-begins property.
func (s *Suite) PreFlowShare(name string) float64 {
	var labeled, pre int
	for _, f := range s.Run(name).DB.All() {
		if !f.Labeled {
			continue
		}
		labeled++
		if f.PreFlow {
			pre++
		}
	}
	if labeled == 0 {
		return 0
	}
	return float64(pre) / float64(labeled)
}

// TruthAccuracy scores DN-Hunter labels against the synthetic ground truth
// for flows that carry both.
func (s *Suite) TruthAccuracy(name string) (acc float64, n int) {
	var ok int
	for _, f := range s.Run(name).DB.All() {
		if !f.Labeled || f.Truth == "" {
			continue
		}
		n++
		if f.Label == f.Truth {
			ok++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return float64(ok) / float64(n), n
}
