package stats

import (
	"math"
	"testing"
)

func TestZipfSkew(t *testing.T) {
	z := NewZipf(100, 1.0)
	r := NewRNG(1)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Sample(r)]++
	}
	if counts[0] <= counts[10] {
		t.Fatalf("rank 0 (%d) not more popular than rank 10 (%d)", counts[0], counts[10])
	}
	if counts[0] <= counts[99] {
		t.Fatalf("rank 0 (%d) not more popular than rank 99 (%d)", counts[0], counts[99])
	}
	// For s=1, p(0)/p(9) = 10; allow generous tolerance.
	ratio := float64(counts[0]) / float64(counts[9]+1)
	if ratio < 5 || ratio > 20 {
		t.Fatalf("zipf ratio rank0/rank9 = %v, want ~10", ratio)
	}
}

func TestZipfProbSumsToOne(t *testing.T) {
	z := NewZipf(50, 1.2)
	sum := 0.0
	for i := 0; i < z.N(); i++ {
		p := z.Prob(i)
		if p <= 0 {
			t.Fatalf("non-positive mass at rank %d", i)
		}
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("probabilities sum to %v", sum)
	}
}

func TestZipfProbOutOfRange(t *testing.T) {
	z := NewZipf(10, 1)
	if z.Prob(-1) != 0 || z.Prob(10) != 0 {
		t.Fatal("out-of-range Prob should be 0")
	}
}

func TestZipfPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewZipf(0, 1)
}

func TestWeightedChoiceProportions(t *testing.T) {
	w := NewWeightedChoice([]float64{1, 3, 0, 6})
	r := NewRNG(2)
	counts := make([]int, 4)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Sample(r)]++
	}
	if counts[2] != 0 {
		t.Fatalf("zero-weight index sampled %d times", counts[2])
	}
	if f := float64(counts[3]) / n; math.Abs(f-0.6) > 0.02 {
		t.Fatalf("weight-6 index frequency %v, want ~0.6", f)
	}
	if f := float64(counts[0]) / n; math.Abs(f-0.1) > 0.02 {
		t.Fatalf("weight-1 index frequency %v, want ~0.1", f)
	}
}

func TestWeightedChoicePanics(t *testing.T) {
	for _, ws := range [][]float64{{0, 0}, {-1, 2}, {}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("expected panic for %v", ws)
				}
			}()
			NewWeightedChoice(ws)
		}()
	}
}

func TestDiurnalPeakAndTrough(t *testing.T) {
	d := Diurnal{PeakHour: 21, Floor: 0.2}
	peak := d.Value(21)
	trough := d.Value(9) // 12 hours opposite the peak
	if math.Abs(peak-1) > 1e-9 {
		t.Fatalf("peak value %v, want 1", peak)
	}
	if math.Abs(trough-0.2) > 1e-9 {
		t.Fatalf("trough value %v, want 0.2", trough)
	}
	for h := 0.0; h < 24; h += 0.5 {
		v := d.Value(h)
		if v < 0.2-1e-9 || v > 1+1e-9 {
			t.Fatalf("Value(%v) = %v outside [floor, 1]", h, v)
		}
	}
}

func TestDiurnalDefaultFloor(t *testing.T) {
	d := Diurnal{PeakHour: 12} // Floor unset
	if v := d.Value(0); v < 0.05 {
		t.Fatalf("default floor too low: %v", v)
	}
}

func TestQuantile(t *testing.T) {
	s := []float64{1, 2, 3, 4, 5}
	if q := Quantile(s, 0); q != 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := Quantile(s, 1); q != 5 {
		t.Fatalf("q1 = %v", q)
	}
	if q := Quantile(s, 0.5); q != 3 {
		t.Fatalf("median = %v", q)
	}
	if q := Quantile(s, 0.25); q != 2 {
		t.Fatalf("q25 = %v", q)
	}
}

func TestMean(t *testing.T) {
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
	if m := Mean([]float64{2, 4, 6}); m != 4 {
		t.Fatalf("Mean = %v", m)
	}
}
