package stats

import (
	"fmt"
	"strings"
	"time"
)

// Binner accumulates counts into fixed-width time bins relative to a trace
// start. It backs the paper's per-10-minute time series (Figs. 4, 5, 14) and
// the 4-hour tracker activity bins (Fig. 11).
type Binner struct {
	width time.Duration
	bins  []float64
}

// NewBinner creates a binner with the given bin width.
func NewBinner(width time.Duration) *Binner {
	if width <= 0 {
		panic("stats: non-positive bin width")
	}
	return &Binner{width: width}
}

// Width returns the bin width.
func (b *Binner) Width() time.Duration { return b.width }

// Index returns the bin index for an offset from trace start. Negative
// offsets map to bin 0.
func (b *Binner) Index(at time.Duration) int {
	if at < 0 {
		return 0
	}
	return int(at / b.width)
}

// Add accumulates v into the bin containing at, growing the series as needed.
func (b *Binner) Add(at time.Duration, v float64) {
	i := b.Index(at)
	for len(b.bins) <= i {
		b.bins = append(b.bins, 0)
	}
	b.bins[i] += v
}

// Incr adds 1 to the bin containing at.
func (b *Binner) Incr(at time.Duration) { b.Add(at, 1) }

// Values returns the accumulated bin values in time order.
func (b *Binner) Values() []float64 {
	out := make([]float64, len(b.bins))
	copy(out, b.bins)
	return out
}

// Len returns the number of bins touched so far.
func (b *Binner) Len() int { return len(b.bins) }

// SetBinUnion is a per-bin set-cardinality accumulator: for each bin it
// tracks the set of distinct string keys observed, e.g. distinct serverIPs
// serving an SLD per 10-minute bin (Fig. 4) or distinct FQDNs per CDN
// (Fig. 5).
type SetBinUnion struct {
	width time.Duration
	bins  []map[string]struct{}
}

// NewSetBinUnion creates the accumulator with the given bin width.
func NewSetBinUnion(width time.Duration) *SetBinUnion {
	if width <= 0 {
		panic("stats: non-positive bin width")
	}
	return &SetBinUnion{width: width}
}

// Add records key as present in the bin containing at.
func (s *SetBinUnion) Add(at time.Duration, key string) {
	if at < 0 {
		at = 0
	}
	i := int(at / s.width)
	for len(s.bins) <= i {
		s.bins = append(s.bins, nil)
	}
	if s.bins[i] == nil {
		s.bins[i] = make(map[string]struct{})
	}
	s.bins[i][key] = struct{}{}
}

// Counts returns the per-bin distinct-key cardinalities.
func (s *SetBinUnion) Counts() []int {
	out := make([]int, len(s.bins))
	for i, m := range s.bins {
		out[i] = len(m)
	}
	return out
}

// Width returns the bin width.
func (s *SetBinUnion) Width() time.Duration { return s.width }

// RenderSeries formats a numeric series as "hh:mm value" rows given the bin
// width, for table-style experiment output.
func RenderSeries(width time.Duration, values []float64) string {
	var b strings.Builder
	for i, v := range values {
		at := time.Duration(i) * width
		h := int(at.Hours())
		m := int(at.Minutes()) % 60
		fmt.Fprintf(&b, "%02d:%02d %10.1f\n", h, m, v)
	}
	return b.String()
}

// Sparkline renders values as a compact unicode bar chart, one rune per bin.
// Empty input renders as an empty string.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	max := values[0]
	for _, v := range values {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range values {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(blocks)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(blocks) {
				idx = len(blocks) - 1
			}
		}
		b.WriteRune(blocks[idx])
	}
	return b.String()
}
