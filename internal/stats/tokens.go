package stats

import "strings"

// Domain-name token utilities implementing the decomposition used throughout
// the paper: TLD, second-level domain ("the organization"), and the service
// tokens of Algorithm 4 (all labels except TLD and SLD, split on
// non-alphanumeric separators, digit runs generalized to 'N').

// multiTLD lists common two-label public suffixes so that e.g.
// bbc.co.uk yields SLD "bbc.co.uk" rather than "co.uk". The paper's traces
// are European and North American; this small static set mirrors the
// practically relevant suffixes without importing a full PSL.
var multiTLD = map[string]struct{}{
	"co.uk": {}, "org.uk": {}, "ac.uk": {}, "gov.uk": {},
	"com.au": {}, "net.au": {}, "org.au": {},
	"co.jp": {}, "ne.jp": {}, "or.jp": {},
	"com.br": {}, "com.cn": {}, "com.tr": {},
}

// SplitFQDN breaks a dotted name into labels, dropping any trailing root dot
// and lowercasing. An empty name yields nil.
func SplitFQDN(fqdn string) []string {
	fqdn = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(fqdn)), ".")
	if fqdn == "" {
		return nil
	}
	return strings.Split(fqdn, ".")
}

// TLD returns the public suffix of the name: the final label, or the final
// two labels for known compound suffixes ("co.uk"). Empty input yields "".
func TLD(fqdn string) string {
	labels := SplitFQDN(fqdn)
	if len(labels) == 0 {
		return ""
	}
	if len(labels) >= 2 {
		last2 := labels[len(labels)-2] + "." + labels[len(labels)-1]
		if _, ok := multiTLD[last2]; ok {
			return last2
		}
	}
	return labels[len(labels)-1]
}

// SLD returns the second-level domain — the organization-identifying suffix,
// e.g. SLD("smtp2.mail.google.com") == "google.com". Names that are bare
// TLDs (or empty) are returned unchanged in lowercase.
//
// The result is a suffix substring of the (normalized) input, so for names
// that are already clean and lowercase — everything the DNS decoder emits —
// the call performs no allocation. The flow database computes an SLD per
// labeled flow, which put the old Split+Join implementation among the
// pipeline's top allocators.
func SLD(fqdn string) string {
	fqdn = strings.TrimSuffix(strings.ToLower(strings.TrimSpace(fqdn)), ".")
	if fqdn == "" {
		return ""
	}
	i := strings.LastIndexByte(fqdn, '.')
	if i < 0 {
		return fqdn // bare TLD
	}
	j := strings.LastIndexByte(fqdn[:i], '.')
	tldLabels := 1
	if _, ok := multiTLD[fqdn[j+1:]]; ok {
		tldLabels = 2
	}
	// Walk back tldLabels+1 dots from the end; the suffix after the last
	// one walked past is the SLD.
	end := len(fqdn)
	for k := 0; k <= tldLabels; k++ {
		dot := strings.LastIndexByte(fqdn[:end], '.')
		if dot < 0 {
			return fqdn // fewer labels than TLD+1: return whole name
		}
		end = dot
	}
	return fqdn[end+1:]
}

// GeneralizeDigits replaces every maximal run of ASCII digits with a single
// 'N', so "smtp2" and "smtp17" collapse to the same token "smtpN"
// (Algorithm 4, lines 5–7).
func GeneralizeDigits(s string) string {
	var b strings.Builder
	b.Grow(len(s))
	inDigits := false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			if !inDigits {
				b.WriteByte('N')
				inDigits = true
			}
			continue
		}
		inDigits = false
		b.WriteByte(c)
	}
	return b.String()
}

// isAlnum reports whether c is an ASCII letter or digit.
func isAlnum(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

// splitNonAlnum splits s on every run of non-alphanumeric bytes.
func splitNonAlnum(s string) []string {
	var out []string
	start := -1
	for i := 0; i < len(s); i++ {
		if isAlnum(s[i]) {
			if start < 0 {
				start = i
			}
			continue
		}
		if start >= 0 {
			out = append(out, s[start:i])
			start = -1
		}
	}
	if start >= 0 {
		out = append(out, s[start:])
	}
	return out
}

// ServiceTokens implements the tokenization of Algorithm 4: take all labels
// of the FQDN except the TLD and the SLD label, split each on
// non-alphanumeric characters, and generalize digit runs to 'N'. For
// "smtp2.mail.google.com" it returns ["smtpN", "mail"]. The result is nil
// when the FQDN has no labels beyond the SLD.
func ServiceTokens(fqdn string) []string {
	labels := SplitFQDN(fqdn)
	if len(labels) == 0 {
		return nil
	}
	sld := SLD(fqdn)
	drop := len(SplitFQDN(sld))
	if len(labels) <= drop {
		return nil
	}
	var toks []string
	for _, label := range labels[:len(labels)-drop] {
		for _, part := range splitNonAlnum(label) {
			toks = append(toks, GeneralizeDigits(part))
		}
	}
	return toks
}

// HostPrefix returns the FQDN with its SLD suffix removed, e.g.
// "media1.cdn.example.com" -> "media1.cdn". It returns "" when the FQDN is
// exactly its SLD.
func HostPrefix(fqdn string) string {
	labels := SplitFQDN(fqdn)
	drop := len(SplitFQDN(SLD(fqdn)))
	if len(labels) <= drop {
		return ""
	}
	return strings.Join(labels[:len(labels)-drop], ".")
}
