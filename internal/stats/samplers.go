package stats

import (
	"math"
	"sort"
)

// Zipf samples ranks 0..n-1 with probability proportional to 1/(rank+1)^s.
// Service popularity in the synthesizer follows a Zipf law, matching the
// skewed access patterns the paper reports (a handful of SLDs dominate
// flows while the FQDN tail keeps growing).
type Zipf struct {
	cdf []float64 // cumulative, normalized
}

// NewZipf builds a sampler over n ranks with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf}
}

// N returns the number of ranks.
func (z *Zipf) N() int { return len(z.cdf) }

// Sample draws a rank in [0, N).
func (z *Zipf) Sample(r *RNG) int {
	u := r.Float64()
	// Binary search the CDF.
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= len(z.cdf) {
		i = len(z.cdf) - 1
	}
	return i
}

// Prob returns the probability mass of rank i.
func (z *Zipf) Prob(i int) float64 {
	if i < 0 || i >= len(z.cdf) {
		return 0
	}
	if i == 0 {
		return z.cdf[0]
	}
	return z.cdf[i] - z.cdf[i-1]
}

// WeightedChoice samples indexes proportionally to the given non-negative
// weights. Zero-weight entries are never chosen. Construction is O(n),
// sampling O(log n).
type WeightedChoice struct {
	cum []float64
}

// NewWeightedChoice builds a sampler. It panics if all weights are zero or
// any weight is negative.
func NewWeightedChoice(weights []float64) *WeightedChoice {
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		sum += w
		cum[i] = sum
	}
	if sum <= 0 {
		panic("stats: all weights zero")
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &WeightedChoice{cum: cum}
}

// Sample draws one index.
func (w *WeightedChoice) Sample(r *RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(w.cum, u)
	if i >= len(w.cum) {
		i = len(w.cum) - 1
	}
	return i
}

// Diurnal is a 24-hour activity profile. Value(t) returns a multiplicative
// load factor in (0, 1]; the paper's traces show pronounced diurnal cycles
// (Figs. 4, 5, 6, 14) with an evening peak and an early-morning trough.
type Diurnal struct {
	// PeakHour is the hour of maximum activity (e.g. 21.0 for 9 pm).
	PeakHour float64
	// Floor is the minimum relative load at the trough, in (0, 1].
	Floor float64
}

// Value returns the relative load at an offset from local midnight. The
// profile is a raised cosine between Floor and 1.0 peaking at PeakHour.
func (d Diurnal) Value(hourOfDay float64) float64 {
	floor := d.Floor
	if floor <= 0 {
		floor = 0.1
	}
	if floor > 1 {
		floor = 1
	}
	phase := 2 * math.Pi * (hourOfDay - d.PeakHour) / 24
	c := (math.Cos(phase) + 1) / 2 // 1 at peak, 0 at trough
	return floor + (1-floor)*c
}

// Quantile returns the q-quantile (0 <= q <= 1) of a sorted sample. It
// interpolates linearly between order statistics and panics on an empty
// sample.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}
