package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds coincide %d/100 times", same)
	}
}

func TestRNGZeroSeed(t *testing.T) {
	r := NewRNG(0)
	// The xorshift core must not get stuck at zero.
	if r.Uint64() == 0 && r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced a stuck stream")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(9)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	if mean := sum / n; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestLogNormalPositive(t *testing.T) {
	r := NewRNG(17)
	for i := 0; i < 1000; i++ {
		if v := r.LogNormal(-1, 1); v <= 0 {
			t.Fatalf("lognormal produced non-positive %v", v)
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Split()
	// Child continues differently from a fresh parent clone.
	clone := NewRNG(21)
	clone.Uint64() // consume the same draw Split consumed
	same := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == clone.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream tracks parent stream (%d/100 equal)", same)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(5)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := NewRNG(6)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, x := range xs {
		got += x
	}
	if got != sum {
		t.Fatalf("shuffle changed elements: %v", xs)
	}
}

func TestQuickFloat64InRange(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := r.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSeedDeterminism(t *testing.T) {
	f := func(seed uint64) bool {
		return NewRNG(seed).Uint64() == NewRNG(seed).Uint64()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
