package stats

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestSLD(t *testing.T) {
	cases := []struct{ in, want string }{
		{"www.example.com", "example.com"},
		{"example.com", "example.com"},
		{"smtp2.mail.google.com", "google.com"},
		{"com", "com"},
		{"", ""},
		{"WWW.Example.COM.", "example.com"},
		{"news.bbc.co.uk", "bbc.co.uk"},
		{"co.uk", "co.uk"},
		{"a.b.c.d.e.zynga.com", "zynga.com"},
	}
	for _, tc := range cases {
		if got := SLD(tc.in); got != tc.want {
			t.Errorf("SLD(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestTLD(t *testing.T) {
	cases := []struct{ in, want string }{
		{"www.example.com", "com"},
		{"news.bbc.co.uk", "co.uk"},
		{"x.io", "io"},
		{"", ""},
	}
	for _, tc := range cases {
		if got := TLD(tc.in); got != tc.want {
			t.Errorf("TLD(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestGeneralizeDigits(t *testing.T) {
	cases := []struct{ in, want string }{
		{"smtp2", "smtpN"},
		{"smtp22", "smtpN"},
		{"a1b2c3", "aNbNcN"},
		{"123", "N"},
		{"abc", "abc"},
		{"", ""},
		{"media42cdn7", "mediaNcdnN"},
	}
	for _, tc := range cases {
		if got := GeneralizeDigits(tc.in); got != tc.want {
			t.Errorf("GeneralizeDigits(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestServiceTokensPaperExample(t *testing.T) {
	// The paper's worked example: smtp2.mail.google.com -> {smtpN, mail}.
	got := ServiceTokens("smtp2.mail.google.com")
	want := []string{"smtpN", "mail"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ServiceTokens = %v, want %v", got, want)
	}
}

func TestServiceTokensSeparators(t *testing.T) {
	got := ServiceTokens("fb_client_7.stats.zynga.com")
	want := []string{"fb", "client", "N", "stats"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ServiceTokens = %v, want %v", got, want)
	}
}

func TestServiceTokensBareSLD(t *testing.T) {
	if toks := ServiceTokens("google.com"); toks != nil {
		t.Fatalf("bare SLD should have no tokens, got %v", toks)
	}
	if toks := ServiceTokens("com"); toks != nil {
		t.Fatalf("bare TLD should have no tokens, got %v", toks)
	}
	if toks := ServiceTokens(""); toks != nil {
		t.Fatalf("empty name should have no tokens, got %v", toks)
	}
}

func TestServiceTokensMultiTLD(t *testing.T) {
	got := ServiceTokens("mail.bbc.co.uk")
	want := []string{"mail"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("ServiceTokens = %v, want %v", got, want)
	}
}

func TestHostPrefix(t *testing.T) {
	cases := []struct{ in, want string }{
		{"media1.cdn.example.com", "media1.cdn"},
		{"example.com", ""},
		{"www.example.com", "www"},
	}
	for _, tc := range cases {
		if got := HostPrefix(tc.in); got != tc.want {
			t.Errorf("HostPrefix(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestSplitFQDN(t *testing.T) {
	if got := SplitFQDN("A.B.c."); !reflect.DeepEqual(got, []string{"a", "b", "c"}) {
		t.Fatalf("SplitFQDN = %v", got)
	}
	if got := SplitFQDN(""); got != nil {
		t.Fatalf("SplitFQDN(\"\") = %v", got)
	}
}

func TestQuickSLDIsSuffix(t *testing.T) {
	// Property: SLD of a well-formed lowercase name is always a suffix of it.
	f := func(a, b, c uint8) bool {
		name := label(a) + "." + label(b) + "." + label(c) + ".com"
		return strings.HasSuffix(name, SLD(name))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGeneralizeDigitsNoDigits(t *testing.T) {
	f := func(s string) bool {
		return !strings.ContainsAny(GeneralizeDigits(s), "0123456789")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickGeneralizeDigitsIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := GeneralizeDigits(s)
		return GeneralizeDigits(once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// label maps a byte to a small non-empty DNS label for property tests.
func label(b uint8) string {
	const alpha = "abcdefghijklmnopqrstuvwxyz"
	return string(alpha[int(b)%len(alpha)]) + string(alpha[int(b/26)%len(alpha)])
}
