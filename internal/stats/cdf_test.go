package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestCDFBasics(t *testing.T) {
	var c CDF
	for _, x := range []float64{1, 2, 2, 3, 10} {
		c.Add(x)
	}
	if c.Len() != 5 {
		t.Fatalf("Len = %d", c.Len())
	}
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.2}, {2, 0.6}, {3, 0.8}, {9.99, 0.8}, {10, 1}, {100, 1},
	}
	for _, tc := range cases {
		if got := c.At(tc.x); math.Abs(got-tc.want) > 1e-9 {
			t.Errorf("At(%v) = %v, want %v", tc.x, got, tc.want)
		}
	}
	if c.Min() != 1 || c.Max() != 10 {
		t.Fatalf("Min/Max = %v/%v", c.Min(), c.Max())
	}
}

func TestCDFEmpty(t *testing.T) {
	var c CDF
	if c.At(5) != 0 {
		t.Fatal("empty CDF should return 0")
	}
}

func TestCDFAddN(t *testing.T) {
	var c CDF
	c.AddN(7, 3)
	c.Add(8)
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	if got := c.At(7); math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("At(7) = %v", got)
	}
}

func TestCDFInterleavedAddAndQuery(t *testing.T) {
	var c CDF
	c.Add(5)
	if c.At(5) != 1 {
		t.Fatal("At after first add")
	}
	c.Add(1) // must re-sort transparently
	if got := c.At(1); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("At(1) after second add = %v", got)
	}
}

func TestCDFQuantileMatchesSortedSample(t *testing.T) {
	var c CDF
	xs := []float64{9, 1, 4, 7, 3}
	for _, x := range xs {
		c.Add(x)
	}
	sort.Float64s(xs)
	if got := c.Quantile(0.5); got != xs[2] {
		t.Fatalf("median = %v, want %v", got, xs[2])
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	f := func(raw []float64, probes []float64) bool {
		var c CDF
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				c.Add(x)
			}
		}
		if c.Len() == 0 {
			return true
		}
		sort.Float64s(probes)
		prev := -1.0
		for _, p := range probes {
			if math.IsNaN(p) {
				continue
			}
			v := c.At(p)
			if v < prev-1e-12 || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLogSpace(t *testing.T) {
	xs := LogSpace(1, 1000, 4)
	want := []float64{1, 10, 100, 1000}
	for i := range want {
		if math.Abs(xs[i]-want[i])/want[i] > 1e-9 {
			t.Fatalf("LogSpace[%d] = %v, want %v", i, xs[i], want[i])
		}
	}
}

func TestLogSpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	LogSpace(0, 10, 5)
}

func TestRenderASCII(t *testing.T) {
	s := RenderASCII([]Point{{X: 1, P: 0.5}})
	if s == "" {
		t.Fatal("empty render")
	}
}

func TestBinner(t *testing.T) {
	b := NewBinner(10 * time.Minute)
	b.Incr(5 * time.Minute)
	b.Incr(9 * time.Minute)
	b.Incr(10 * time.Minute)
	b.Add(35*time.Minute, 2.5)
	vs := b.Values()
	if len(vs) != 4 {
		t.Fatalf("bins = %d, want 4", len(vs))
	}
	if vs[0] != 2 || vs[1] != 1 || vs[2] != 0 || vs[3] != 2.5 {
		t.Fatalf("values = %v", vs)
	}
}

func TestBinnerNegativeOffset(t *testing.T) {
	b := NewBinner(time.Minute)
	b.Incr(-5 * time.Second)
	if vs := b.Values(); len(vs) != 1 || vs[0] != 1 {
		t.Fatalf("values = %v", b.Values())
	}
}

func TestSetBinUnion(t *testing.T) {
	s := NewSetBinUnion(10 * time.Minute)
	s.Add(1*time.Minute, "a")
	s.Add(2*time.Minute, "a") // duplicate in same bin
	s.Add(3*time.Minute, "b")
	s.Add(15*time.Minute, "a")
	counts := s.Counts()
	if len(counts) != 2 || counts[0] != 2 || counts[1] != 1 {
		t.Fatalf("counts = %v", counts)
	}
}

func TestSparkline(t *testing.T) {
	if Sparkline(nil) != "" {
		t.Fatal("empty input should render empty")
	}
	s := Sparkline([]float64{0, 1, 2, 4})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline length = %d", len([]rune(s)))
	}
	if Sparkline([]float64{0, 0}) == "" {
		t.Fatal("all-zero input should still render")
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries(10*time.Minute, []float64{1, 2})
	if out == "" {
		t.Fatal("empty series render")
	}
}
