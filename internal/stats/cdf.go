package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over float64 samples.
// The zero value is ready to use. Add samples, then call At / Points. Used to
// regenerate the paper's CDF figures (Fig. 3 fan-out, Fig. 12/13 delays).
type CDF struct {
	samples []float64
	sorted  bool
}

// Add appends one sample.
func (c *CDF) Add(x float64) {
	c.samples = append(c.samples, x)
	c.sorted = false
}

// AddN appends the same sample n times (handy for weighted counts).
func (c *CDF) AddN(x float64, n int) {
	for i := 0; i < n; i++ {
		c.samples = append(c.samples, x)
	}
	c.sorted = false
}

// Len returns the number of samples.
func (c *CDF) Len() int { return len(c.samples) }

func (c *CDF) ensureSorted() {
	if !c.sorted {
		sort.Float64s(c.samples)
		c.sorted = true
	}
}

// At returns P(X <= x). It returns 0 for an empty CDF.
func (c *CDF) At(x float64) float64 {
	if len(c.samples) == 0 {
		return 0
	}
	c.ensureSorted()
	// Number of samples <= x.
	n := sort.Search(len(c.samples), func(i int) bool { return c.samples[i] > x })
	return float64(n) / float64(len(c.samples))
}

// Quantile returns the q-quantile of the sample.
func (c *CDF) Quantile(q float64) float64 {
	c.ensureSorted()
	return Quantile(c.samples, q)
}

// Min returns the smallest sample; it panics on an empty CDF.
func (c *CDF) Min() float64 {
	c.ensureSorted()
	return c.samples[0]
}

// Max returns the largest sample; it panics on an empty CDF.
func (c *CDF) Max() float64 {
	c.ensureSorted()
	return c.samples[len(c.samples)-1]
}

// Point is one (x, P(X<=x)) pair of a rendered CDF curve.
type Point struct {
	X float64
	P float64
}

// Points renders the CDF at the given x positions.
func (c *CDF) Points(xs []float64) []Point {
	pts := make([]Point, len(xs))
	for i, x := range xs {
		pts[i] = Point{X: x, P: c.At(x)}
	}
	return pts
}

// LogSpace returns n points logarithmically spaced across [lo, hi].
// Both bounds must be positive. Used for the paper's semilog CDF axes.
func LogSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || hi <= lo || n < 2 {
		panic("stats: invalid LogSpace range")
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(ratio, frac)
	}
	return out
}

// RenderASCII renders the CDF as a small text table, one "x p" row per
// point, suitable for diffing in tests and pasting into plots.
func RenderASCII(pts []Point) string {
	var b strings.Builder
	for _, p := range pts {
		fmt.Fprintf(&b, "%12.4f %8.4f\n", p.X, p.P)
	}
	return b.String()
}
