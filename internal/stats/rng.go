// Package stats provides the statistical substrate shared by the trace
// synthesizer and the analytics modules: seeded random samplers (Zipf,
// lognormal, exponential), empirical CDFs, fixed-width time binning, and the
// FQDN token utilities used by the service-tag extraction algorithm.
//
// Everything in this package is deterministic given a seed and uses only the
// standard library.
package stats

import "math"

// RNG is a small, fast, seedable pseudo-random generator (splitmix64 seeded
// xorshift*). It exists so the synthesizer is reproducible across Go versions:
// math/rand's global stream ordering is not part of our compatibility surface,
// and math/rand/v2 reseeds differently. RNG is not safe for concurrent use;
// give each goroutine its own instance (use Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state. A zero seed is remapped to a fixed
// non-zero constant because the xorshift core has a fixed point at zero.
func (r *RNG) Seed(seed uint64) {
	// splitmix64 step to diffuse low-entropy seeds.
	z := seed + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	r.state = z
}

// Split derives an independent generator from the current one. The child
// stream does not overlap the parent stream for any practical horizon.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xd1b54a32d192ed03)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	x := r.state
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	r.state = x
	return x * 0x2545f4914f6cdd1d
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("stats: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate (Box–Muller, one branch).
func (r *RNG) NormFloat64() float64 {
	// Marsaglia polar method; rejection loop terminates with prob ~0.785/iter.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with rate 1.
func (r *RNG) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// LogNormal returns exp(N(mu, sigma)). Used for first-flow delays, whose
// empirical CDF in the paper (Fig. 12) is well approximated by a lognormal
// body with a heavy prefetch tail added separately by the synthesizer.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.NormFloat64())
}

// Exponential returns an exponential variate with the given mean.
func (r *RNG) Exponential(mean float64) float64 {
	return mean * r.ExpFloat64()
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle permutes the first n elements using swap, Fisher–Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
