package dnhunter

// Integration tests of the public facade: generate → run → analyze, plus
// the pcap path used by the CLI tools.

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/flows"
	"repro/internal/netio"
)

func TestFacadeEndToEnd(t *testing.T) {
	tr := GenerateQuickTrace(21)
	res := RunTrace(tr, Options{KeepDNSTimes: true})
	if res.DB.Len() < 100 {
		t.Fatalf("flows = %d", res.DB.Len())
	}
	if res.Stats.LabeledFlows == 0 || res.Stats.DNSResponses == 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if len(res.DNSTimes) != int(res.Stats.DNSResponses) {
		t.Fatalf("DNS times %d vs responses %d", len(res.DNSTimes), res.Stats.DNSResponses)
	}
	cov := res.DB.Coverage(0)
	if cov.Ratio(flows.L7HTTP) < 0.8 {
		t.Fatalf("HTTP coverage = %v", cov.Ratio(flows.L7HTTP))
	}
}

func TestFacadeDeterministicAcrossRuns(t *testing.T) {
	a := RunTrace(GenerateQuickTrace(5), Options{})
	b := RunTrace(GenerateQuickTrace(5), Options{})
	if a.DB.Len() != b.DB.Len() || a.Stats.LabeledFlows != b.Stats.LabeledFlows {
		t.Fatalf("non-deterministic: %d/%d labeled %d/%d",
			a.DB.Len(), b.DB.Len(), a.Stats.LabeledFlows, b.Stats.LabeledFlows)
	}
}

func TestFacadeTagExtraction(t *testing.T) {
	tr := GenerateTrace("EU1-FTTH", 0.2, 11)
	res := RunTrace(tr, Options{})
	tags := ExtractTags(res.DB, 25, 5)
	if len(tags) == 0 {
		t.Fatal("no tags on port 25")
	}
}

func TestFacadeSpatialAndContent(t *testing.T) {
	tr := GenerateTrace("US-3G", 0.3, 13)
	res := RunTrace(tr, Options{})
	sp := SpatialDiscovery(res.DB, tr.OrgDB, "zynga.com")
	if sp.TotalFlows == 0 || len(sp.Hosts) == 0 {
		t.Fatalf("spatial = %+v", sp)
	}
	top := TopDomainsOnOrg(res.DB, tr.OrgDB, "amazon", 5)
	if len(top) == 0 {
		t.Fatal("no amazon-hosted content found")
	}
}

func TestFacadePcapRoundTrip(t *testing.T) {
	// Serialize a trace to pcap bytes, then run the pipeline through the
	// pcap reader — the cmd/dnhunter path.
	tr := GenerateQuickTrace(31)
	var buf bytes.Buffer
	w := netio.NewWriter(&buf)
	for _, p := range tr.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := netio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	db, st, err := RunPcap(r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Same trace through the in-memory path must agree exactly.
	direct := RunTrace(tr, Options{})
	if db.Len() != direct.DB.Len() || st.LabeledFlows != direct.Stats.LabeledFlows {
		t.Fatalf("pcap path diverges: %d/%d flows, %d/%d labeled",
			db.Len(), direct.DB.Len(), st.LabeledFlows, direct.Stats.LabeledFlows)
	}
}

func TestFacadePolicyBeforeFlow(t *testing.T) {
	tr := GenerateQuickTrace(17)
	policy := NewPolicy(Rule{Pattern: "zynga.com", Action: ActionBlock})
	var atSYN, total int
	RunTrace(tr, Options{OnTag: func(e TagEvent) {
		if policy.Decide(e.Label) == ActionBlock {
			total++
			if e.SYN {
				atSYN++
			}
		}
	}})
	if total == 0 {
		t.Skip("no zynga flows in this small trace")
	}
	if atSYN != total {
		t.Fatalf("only %d/%d blocked flows caught at the SYN", atSYN, total)
	}
}

// multiset renders flows to canonical strings with counts so databases can
// be compared regardless of record order.
func multiset(db *FlowDB) map[string]int {
	m := make(map[string]int, db.Len())
	for _, f := range db.All() {
		m[fmt.Sprintf("%+v", f)]++
	}
	return m
}

// TestEngineShardEquivalenceNamedScenarios is the facade-level guarantee:
// on the paper's named scenarios, an N-shard Engine produces the identical
// aggregate Stats and FlowDB contents as shard count 1.
func TestEngineShardEquivalenceNamedScenarios(t *testing.T) {
	for _, name := range []string{"EU1-FTTH", "EU2-ADSL"} {
		t.Run(name, func(t *testing.T) {
			tr := GenerateTrace(name, 0.15, 19)
			single, err := NewEngine().RunTrace(context.Background(), tr)
			if err != nil {
				t.Fatal(err)
			}
			want := multiset(single.DB)
			for _, shards := range []int{2, 4} {
				res, err := NewEngine(WithShards(shards)).RunTrace(context.Background(), tr)
				if err != nil {
					t.Fatal(err)
				}
				if res.Stats != single.Stats {
					t.Errorf("shards=%d stats diverge:\n 1: %+v\n %d: %+v",
						shards, single.Stats, shards, res.Stats)
				}
				got := multiset(res.DB)
				if len(got) != len(want) || res.DB.Len() != single.DB.Len() {
					t.Fatalf("shards=%d: %d flows vs %d", shards, res.DB.Len(), single.DB.Len())
				}
				for k, n := range want {
					if got[k] != n {
						t.Fatalf("shards=%d: flow multiset diverges at %q (%d vs %d)",
							shards, k, n, got[k])
					}
				}
			}
		})
	}
}

// TestEngineFacadeOptions exercises the functional options together: a
// custom sink, DNS time collection, and a resolver override, on a sharded
// run (which also makes `go test -race ./...` exercise the concurrent
// pipeline through the facade).
func TestEngineFacadeOptions(t *testing.T) {
	tr := GenerateQuickTrace(21)
	var tags int
	eng := NewEngine(
		WithShards(4),
		WithResolver(ResolverConfig{ClistSize: 1 << 16}),
		WithSink(&FuncSink{Tag: func(TagEvent) { tags++ }}),
		WithDNSTimes(),
	)
	if eng.Shards() != 4 {
		t.Fatalf("Shards() = %d", eng.Shards())
	}
	res, err := eng.RunTrace(context.Background(), tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.Trace != tr {
		t.Fatal("Result.Trace not set")
	}
	if len(res.DNSTimes) != int(res.Stats.DNSResponses) {
		t.Fatalf("DNS times %d vs responses %d", len(res.DNSTimes), res.Stats.DNSResponses)
	}
	for i := 1; i < len(res.DNSTimes); i++ {
		if res.DNSTimes[i] < res.DNSTimes[i-1] {
			t.Fatal("DNSTimes not in trace order")
		}
	}
	if uint64(tags) != res.Stats.Table.FlowsCreated {
		t.Fatalf("sink saw %d tags, table created %d flows", tags, res.Stats.Table.FlowsCreated)
	}
	// The legacy wrapper must agree with the engine it delegates to.
	legacy := RunTrace(tr, Options{})
	if legacy.Err != nil {
		t.Fatal(legacy.Err)
	}
	if legacy.Stats != res.Stats {
		t.Fatalf("legacy wrapper diverges:\n legacy %+v\n engine %+v", legacy.Stats, res.Stats)
	}
}

// TestEngineFacadeCancel: a cancelled context surfaces as an error, not a
// panic, at any shard count.
func TestEngineFacadeCancel(t *testing.T) {
	tr := GenerateQuickTrace(23)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, shards := range []int{1, 4} {
		_, err := NewEngine(WithShards(shards)).RunTrace(ctx, tr)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("shards=%d: err = %v, want context.Canceled", shards, err)
		}
	}
}

func TestScenarioNamesStable(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 5 || names[0] != "US-3G" {
		t.Fatalf("names = %v", names)
	}
	// Returned slice is a copy.
	names[0] = "mutated"
	if ScenarioNames()[0] != "US-3G" {
		t.Fatal("ScenarioNames exposes internal state")
	}
}

func TestFirstFlowDelaysPlausible(t *testing.T) {
	tr := GenerateTrace("EU1-FTTH", 0.2, 19)
	res := RunTrace(tr, Options{})
	n, fast := 0, 0
	for _, f := range res.DB.All() {
		if f.FirstAfterDNS {
			n++
			if f.DNSDelay <= time.Second {
				fast++
			}
		}
	}
	if n < 50 {
		t.Fatalf("only %d first-after-DNS flows", n)
	}
	if frac := float64(fast) / float64(n); frac < 0.6 {
		t.Fatalf("fast first-flow fraction = %v", frac)
	}
}

// TestFacadeMultiVantage drives the public multi-source API end to end:
// three synthetic vantages through one RunSources call, with DNS times
// collected per vantage.
func TestFacadeMultiVantage(t *testing.T) {
	trs := map[string]*Trace{
		"US":  GenerateQuickTrace(51),
		"EU1": GenerateQuickTrace(53),
	}
	eng := NewEngine(
		WithShards(2),
		WithDNSTimes(),
		WithTraceSource("US", trs["US"]),
		WithTraceSource("EU1", trs["EU1"]),
		WithMergeWindow(10*time.Second),
	)
	multi, err := eng.RunSources(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(multi.Vantages) != 2 || multi.Vantages[0] != "US" || multi.Vantages[1] != "EU1" {
		t.Fatalf("vantages = %v", multi.Vantages)
	}
	var dnsSum int
	for name, vr := range multi.PerVantage {
		if vr.DB.Len() == 0 || vr.Stats.LabeledFlows == 0 {
			t.Errorf("%s: empty partition", name)
		}
		if len(vr.DNSTimes) != int(vr.Stats.DNSResponses) {
			t.Errorf("%s: %d DNS times vs %d responses", name, len(vr.DNSTimes), vr.Stats.DNSResponses)
		}
		for i := 1; i < len(vr.DNSTimes); i++ {
			if vr.DNSTimes[i] < vr.DNSTimes[i-1] {
				t.Errorf("%s: DNS times out of order", name)
				break
			}
		}
		dnsSum += len(vr.DNSTimes)
		// Truth sidecars must not leak across vantages: scoring agreement
		// stays high within each partition.
		for _, f := range vr.DB.All() {
			if f.Vantage != name {
				t.Fatalf("%s: flow stamped %q", name, f.Vantage)
			}
		}
	}
	if len(multi.Merged.DNSTimes) != dnsSum {
		t.Errorf("merged DNS times %d != sum %d", len(multi.Merged.DNSTimes), dnsSum)
	}
	if multi.Merged.DB.Len() != multi.PerVantage["US"].DB.Len()+multi.PerVantage["EU1"].DB.Len() {
		t.Errorf("merged DB size mismatch")
	}
	// Misuse surfaces as errors, not panics.
	if _, err := NewEngine().RunSources(context.Background()); err == nil {
		t.Error("RunSources without sources should fail")
	}
}
