package dnhunter

// Integration tests of the public facade: generate → run → analyze, plus
// the pcap path used by the CLI tools.

import (
	"bytes"
	"testing"
	"time"

	"repro/internal/flows"
	"repro/internal/netio"
)

func TestFacadeEndToEnd(t *testing.T) {
	tr := GenerateQuickTrace(21)
	res := RunTrace(tr, Options{KeepDNSTimes: true})
	if res.DB.Len() < 100 {
		t.Fatalf("flows = %d", res.DB.Len())
	}
	if res.Stats.LabeledFlows == 0 || res.Stats.DNSResponses == 0 {
		t.Fatalf("stats = %+v", res.Stats)
	}
	if len(res.DNSTimes) != int(res.Stats.DNSResponses) {
		t.Fatalf("DNS times %d vs responses %d", len(res.DNSTimes), res.Stats.DNSResponses)
	}
	cov := res.DB.Coverage(0)
	if cov.Ratio(flows.L7HTTP) < 0.8 {
		t.Fatalf("HTTP coverage = %v", cov.Ratio(flows.L7HTTP))
	}
}

func TestFacadeDeterministicAcrossRuns(t *testing.T) {
	a := RunTrace(GenerateQuickTrace(5), Options{})
	b := RunTrace(GenerateQuickTrace(5), Options{})
	if a.DB.Len() != b.DB.Len() || a.Stats.LabeledFlows != b.Stats.LabeledFlows {
		t.Fatalf("non-deterministic: %d/%d labeled %d/%d",
			a.DB.Len(), b.DB.Len(), a.Stats.LabeledFlows, b.Stats.LabeledFlows)
	}
}

func TestFacadeTagExtraction(t *testing.T) {
	tr := GenerateTrace("EU1-FTTH", 0.2, 11)
	res := RunTrace(tr, Options{})
	tags := ExtractTags(res.DB, 25, 5)
	if len(tags) == 0 {
		t.Fatal("no tags on port 25")
	}
}

func TestFacadeSpatialAndContent(t *testing.T) {
	tr := GenerateTrace("US-3G", 0.3, 13)
	res := RunTrace(tr, Options{})
	sp := SpatialDiscovery(res.DB, tr.OrgDB, "zynga.com")
	if sp.TotalFlows == 0 || len(sp.Hosts) == 0 {
		t.Fatalf("spatial = %+v", sp)
	}
	top := TopDomainsOnOrg(res.DB, tr.OrgDB, "amazon", 5)
	if len(top) == 0 {
		t.Fatal("no amazon-hosted content found")
	}
}

func TestFacadePcapRoundTrip(t *testing.T) {
	// Serialize a trace to pcap bytes, then run the pipeline through the
	// pcap reader — the cmd/dnhunter path.
	tr := GenerateQuickTrace(31)
	var buf bytes.Buffer
	w := netio.NewWriter(&buf)
	for _, p := range tr.Packets {
		if err := w.WritePacket(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := netio.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	db, st, err := RunPcap(r, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Same trace through the in-memory path must agree exactly.
	direct := RunTrace(tr, Options{})
	if db.Len() != direct.DB.Len() || st.LabeledFlows != direct.Stats.LabeledFlows {
		t.Fatalf("pcap path diverges: %d/%d flows, %d/%d labeled",
			db.Len(), direct.DB.Len(), st.LabeledFlows, direct.Stats.LabeledFlows)
	}
}

func TestFacadePolicyBeforeFlow(t *testing.T) {
	tr := GenerateQuickTrace(17)
	policy := NewPolicy(Rule{Pattern: "zynga.com", Action: ActionBlock})
	var atSYN, total int
	RunTrace(tr, Options{OnTag: func(e TagEvent) {
		if policy.Decide(e.Label) == ActionBlock {
			total++
			if e.SYN {
				atSYN++
			}
		}
	}})
	if total == 0 {
		t.Skip("no zynga flows in this small trace")
	}
	if atSYN != total {
		t.Fatalf("only %d/%d blocked flows caught at the SYN", atSYN, total)
	}
}

func TestScenarioNamesStable(t *testing.T) {
	names := ScenarioNames()
	if len(names) != 5 || names[0] != "US-3G" {
		t.Fatalf("names = %v", names)
	}
	// Returned slice is a copy.
	names[0] = "mutated"
	if ScenarioNames()[0] != "US-3G" {
		t.Fatal("ScenarioNames exposes internal state")
	}
}

func TestFirstFlowDelaysPlausible(t *testing.T) {
	tr := GenerateTrace("EU1-FTTH", 0.2, 19)
	res := RunTrace(tr, Options{})
	n, fast := 0, 0
	for _, f := range res.DB.All() {
		if f.FirstAfterDNS {
			n++
			if f.DNSDelay <= time.Second {
				fast++
			}
		}
	}
	if n < 50 {
		t.Fatalf("only %d first-after-DNS flows", n)
	}
	if frac := float64(fast) / float64(n); frac < 0.6 {
		t.Fatalf("fast first-flow fraction = %v", frac)
	}
}
