package dnhunter_test

import (
	"context"
	"fmt"
	"time"

	dnhunter "repro"
)

// ExampleEngine_Serve runs the streaming mode over a synthetic trace:
// finished flows leave through rolling 10-minute windows instead of
// accumulating in memory, and the report carries the same aggregate
// statistics a batch run would.
func ExampleEngine_Serve() {
	tr := dnhunter.GenerateQuickTrace(1)
	eng := dnhunter.NewEngine(dnhunter.WithTruth(tr.TruthFunc()))

	var windows, flows int
	rep, err := eng.Serve(context.Background(), tr.Source(), dnhunter.ServeConfig{
		Window: 10 * time.Minute,
		FlushWindow: func(w dnhunter.Window) error {
			windows++
			flows += w.DB.Len()
			return nil
		},
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("windows=%d flows=%d\n", windows, flows)
	fmt.Printf("emitted=%d labeled=%d\n", rep.Stats.Flows, rep.Stats.LabeledFlows)
	// Output:
	// windows=3 flows=429
	// emitted=429 labeled=365
}
