package dnhunter_test

import (
	"bytes"
	"context"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	dnhunter "repro"
)

// TestServeSoakHeapBounded streams a looped trace through Serve long
// enough for many window rotations and asserts heap-in-use stays under a
// fixed ceiling: the windowed store recycles its memory instead of
// accumulating flows, so sustained streaming must reach a steady state.
// The full standard analytics pipeline rides along on the Observe hook —
// sketch state is bounded by construction, and this is where a
// regression (an unbounded map in a query) would show up first.
func TestServeSoakHeapBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	tr := dnhunter.GenerateQuickTrace(3)
	// 300 passes × 30 min of trace with 10-minute windows: ~1.1M packets
	// and ~900 window rotations of sustained streaming.
	loop := dnhunter.NewLoopSource(tr.Packets, 0, 300)

	var samples []uint64
	windows := 0
	// A small Clist reaches its (by-design bounded) capacity within the
	// warmup; the default 1M-entry list would keep absorbing responses —
	// and growing — for the whole soak.
	eng := dnhunter.NewEngine(dnhunter.WithResolver(dnhunter.ResolverConfig{ClistSize: 4096}))
	pipe := dnhunter.NewAnalyticsPipeline(dnhunter.StreamingQueries(nil)...)
	rep, err := eng.Serve(context.Background(), loop, dnhunter.ServeConfig{
		Window:        10 * time.Minute,
		ObserveWindow: pipe.ObserveWindow,
		FlushWindow: func(w dnhunter.Window) error {
			// Sample every tenth rotation, on the serving goroutine, after
			// the window's memory has been handed back for reuse.
			if windows++; windows%10 != 0 {
				return nil
			}
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			samples = append(samples, ms.HeapInuse)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Windows < 3 {
		t.Fatalf("soak rotated %d windows, want >= 3", rep.Windows)
	}
	if len(samples) < 6 {
		t.Fatalf("sampled heap %d times, want >= 6", len(samples))
	}
	// Fixed ceiling: 3× the warmup watermark. Span fragmentation creeps a
	// few KB per rotation with a decaying slope (observed ~4 MB → ~7 MB
	// over 900 rotations); a genuine leak — flows accumulating anywhere —
	// grows linearly with the stream and blows through 3× within the
	// first third of the soak.
	var ceiling uint64
	for _, s := range samples[:3] {
		if s > ceiling {
			ceiling = s
		}
	}
	ceiling *= 3
	for i, s := range samples[3:] {
		if s > ceiling {
			t.Fatalf("heap sample %d = %d bytes exceeds steady-state ceiling %d (warmup %v)",
				i+3, s, ceiling, samples[:3])
		}
	}
	// The pipeline must have seen every finished flow, not a sample.
	if got := pipe.Observed(); got != rep.Stats.Flows {
		t.Fatalf("analytics observed %d flows, serve reported %d", got, rep.Stats.Flows)
	}
	for _, qr := range pipe.Snapshot() {
		if qr.Result == nil {
			t.Fatalf("query %s snapshot is nil after soak", qr.Name)
		}
	}
}

// TestServeWindowsByteMatchBatch asserts the CSV concatenation of all
// flushed windows is byte-identical to the CSV of an equivalent batch
// run: windowing partitions the emission stream, it never reorders or
// rewrites it.
func TestServeWindowsByteMatchBatch(t *testing.T) {
	tr := dnhunter.GenerateQuickTrace(5)

	eng := dnhunter.NewEngine(dnhunter.WithTruth(tr.TruthFunc()))
	batch, err := eng.Run(context.Background(), tr.Source())
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	if err := batch.DB.WriteCSV(&want); err != nil {
		t.Fatal(err)
	}

	var got bytes.Buffer
	_, err = eng.Serve(context.Background(), tr.Source(), dnhunter.ServeConfig{
		Window: 5 * time.Minute,
		FlushWindow: func(w dnhunter.Window) error {
			var buf bytes.Buffer
			if err := w.DB.WriteCSV(&buf); err != nil {
				return err
			}
			b := buf.Bytes()
			if got.Len() > 0 {
				// Every WriteCSV emits the header line; keep only the first.
				b = b[bytes.IndexByte(b, '\n')+1:]
			}
			got.Write(b)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("window CSV concatenation diverges from batch run: %d vs %d bytes",
			got.Len(), want.Len())
	}
}

// TestServeCheckpointAcrossRestart exercises the public checkpoint
// surface: serve, restart, and confirm the restored resolver labels flows
// the cold restart cannot.
func TestServeCheckpointAcrossRestart(t *testing.T) {
	tr := dnhunter.GenerateQuickTrace(9)
	half := len(tr.Packets) / 2
	ckpt := filepath.Join(t.TempDir(), "clist.ckpt")
	eng := dnhunter.NewEngine()

	first, err := eng.Serve(context.Background(),
		dnhunter.NewLoopSource(tr.Packets[:half], 0, 1),
		dnhunter.ServeConfig{CheckpointPath: ckpt})
	if err != nil {
		t.Fatal(err)
	}
	if first.CheckpointedEntries == 0 {
		t.Fatal("first run checkpointed nothing")
	}

	run2 := func(path string) *dnhunter.ServeReport {
		rep, err := eng.Serve(context.Background(),
			dnhunter.NewLoopSource(tr.Packets[half:], 0, 1),
			dnhunter.ServeConfig{CheckpointPath: path})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	cold := run2(filepath.Join(t.TempDir(), "absent.ckpt"))
	warm := run2(ckpt)
	if warm.RestoredEntries != first.CheckpointedEntries {
		t.Fatalf("restored %d, checkpointed %d", warm.RestoredEntries, first.CheckpointedEntries)
	}
	if warm.Stats.LabeledFlows <= cold.Stats.LabeledFlows {
		t.Fatalf("warm restart labeled %d flows, cold %d — checkpoint had no effect",
			warm.Stats.LabeledFlows, cold.Stats.LabeledFlows)
	}
}
