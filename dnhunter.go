// Package dnhunter is the public facade of the DN-Hunter reproduction
// (Bermudez et al., "DNS to the Rescue: Discerning Content and Services in
// a Tangled Web", ACM IMC 2012).
//
// DN-Hunter passively correlates sniffed DNS responses with subsequent
// traffic flows, tagging every flow with the FQDN the client resolved —
// before the flow's first payload byte, and regardless of encryption. The
// library exposes:
//
//   - the real-time pipeline as a concurrent, sharded Engine (packet
//     source → DNS resolver → flow tagger, hashed by client address onto
//     parallel shards),
//   - the off-line analytics (spatial discovery, content discovery,
//     service-tag extraction),
//   - a synthetic ISP workload generator standing in for the paper's
//     proprietary traces, and
//   - the baselines the paper compares against (reverse DNS lookup, TLS
//     certificate inspection).
//
// Quick start:
//
//	trace := dnhunter.GenerateTrace("EU1-FTTH", 0.2, 1)
//	eng := dnhunter.NewEngine(dnhunter.WithShards(-1)) // one shard per CPU
//	res, err := eng.RunTrace(context.Background(), trace)
//	if err != nil { ... }
//	fmt.Println(res.Stats.Resolver)           // hit ratio etc.
//	for _, f := range res.DB.All()[:10] {
//	    fmt.Println(f.Key, f.Label)
//	}
//
// Any shard count yields the same flow set and aggregate statistics (as
// long as the per-shard resolver Clist never overflows; see WithShards);
// one shard reproduces the deterministic single-threaded pipeline
// exactly. Event consumers implement the Sink interface (see WithSink);
// the legacy single-threaded Pipeline, Options and RunTrace remain as
// deprecated wrappers over the Engine.
package dnhunter

import (
	"context"
	"time"

	"repro/internal/analytics"
	"repro/internal/core"
	"repro/internal/flowdb"
	"repro/internal/flows"
	"repro/internal/netio"
	"repro/internal/orgdb"
	"repro/internal/resolver"
	"repro/internal/synth"
)

// Re-exported types: the facade keeps downstream imports to one package.
type (
	// Pipeline is the assembled single-threaded DN-Hunter instance.
	//
	// Deprecated: use Engine, which adds sharded parallelism, context
	// cancellation, and error returns.
	Pipeline = core.DNHunter
	// Config assembles a Pipeline.
	//
	// Deprecated: configure an Engine with Option values instead.
	Config = core.Config
	// Stats aggregates pipeline counters.
	Stats = core.Stats
	// TagEvent fires at flow start with the assigned label.
	TagEvent = core.TagEvent
	// DNSEvent describes one sniffed DNS response.
	DNSEvent = core.DNSEvent
	// Policy is the FQDN-based rule engine for online enforcement.
	Policy = core.Policy
	// Rule is one policy rule.
	Rule = core.Rule
	// Action is a policy decision.
	Action = core.Action
	// LabeledFlow is one tagged flow record.
	LabeledFlow = flowdb.LabeledFlow
	// FlowDB is the labeled flows database.
	FlowDB = flowdb.DB
	// FlowKey identifies a flow client → server.
	FlowKey = flows.Key
	// ResolverConfig tunes the DNS cache replica (Clist size, map kind).
	ResolverConfig = resolver.Config
	// Trace is one synthetic capture with its sidecars.
	Trace = synth.Trace
	// Scenario parameterizes a synthetic capture.
	Scenario = synth.Scenario
	// OrgDB maps server addresses to organizations.
	OrgDB = orgdb.DB
)

// Policy actions.
const (
	ActionAllow        = core.ActionAllow
	ActionPrioritize   = core.ActionPrioritize
	ActionDeprioritize = core.ActionDeprioritize
	ActionRateLimit    = core.ActionRateLimit
	ActionBlock        = core.ActionBlock
)

// NewPipeline assembles a single-threaded DN-Hunter pipeline.
//
// Deprecated: use NewEngine; the Engine with one shard is the same
// pipeline with context support and error returns.
func NewPipeline(cfg Config) *Pipeline { return core.New(cfg) }

// NewPolicy builds an ordered policy rule set.
func NewPolicy(rules ...Rule) *Policy { return core.NewPolicy(rules...) }

// GenerateTrace synthesizes one of the paper's named captures ("US-3G",
// "EU2-ADSL", "EU1-ADSL1", "EU1-ADSL2", "EU1-FTTH") at the given scale.
func GenerateTrace(name string, scale float64, seed uint64) *Trace {
	return synth.Generate(synth.NamedScenario(name, scale, seed))
}

// GenerateQuickTrace synthesizes a small trace for demos and tests.
func GenerateQuickTrace(seed uint64) *Trace {
	return synth.Generate(synth.QuickScenario(seed))
}

// ScenarioNames lists the five named captures in paper order.
func ScenarioNames() []string { return append([]string(nil), synth.ScenarioNames...) }

// Options tunes RunTrace.
//
// Deprecated: configure an Engine with Option values; OnTag becomes a Sink
// (WithSink), KeepDNSTimes becomes WithDNSTimes.
type Options struct {
	// Resolver overrides the resolver configuration (defaults: 1M-entry
	// Clist, hash maps).
	Resolver ResolverConfig
	// OnTag, when set, receives every flow-start tag event.
	OnTag func(TagEvent)
	// KeepDNSTimes collects DNS response timestamps into Result.DNSTimes
	// (needed by the Fig. 14 experiment).
	KeepDNSTimes bool
}

// Result is the outcome of running the pipeline over a trace.
type Result struct {
	DB       *FlowDB
	Stats    Stats
	DNSTimes []time.Duration
	Trace    *Trace
	// Readers holds per-reader-partition counters from Engine runs (one
	// entry per partition; nil from the legacy single-threaded pipeline).
	Readers []ReaderStat
	// Err records a pipeline failure for callers of the deprecated,
	// non-error-returning RunTrace wrapper. Engine.Run reports errors
	// directly and never sets it.
	Err error
}

// RunTrace replays a synthetic trace through the full pipeline (parser →
// resolver → tagger) and returns the labeled flow database and statistics.
//
// Deprecated: use Engine.RunTrace, which shards across cores, honors a
// context, and returns errors. This wrapper runs one shard and reports a
// failure (impossible with in-memory traces) via Result.Err.
func RunTrace(tr *Trace, opts Options) *Result {
	eopts := []Option{WithResolver(opts.Resolver)}
	if opts.OnTag != nil {
		eopts = append(eopts, WithSink(&FuncSink{Tag: opts.OnTag}))
	}
	if opts.KeepDNSTimes {
		eopts = append(eopts, WithDNSTimes())
	}
	res, err := NewEngine(eopts...).RunTrace(context.Background(), tr)
	if err != nil {
		return &Result{Trace: tr, Err: err}
	}
	return res
}

// RunPcap runs the single-threaded pipeline over any packet source (e.g. a
// netio.Reader over a pcap file) and returns the database and stats.
//
// Deprecated: use Engine.Run, which shards across cores and honors a
// context.
func RunPcap(src netio.PacketSource, cfg Config) (*FlowDB, Stats, error) {
	h := core.New(cfg)
	if err := h.Run(src); err != nil {
		return nil, Stats{}, err
	}
	return h.DB(), h.Stats(), nil
}

// ExtractTags runs the paper's Algorithm 4 on a labeled flow database.
func ExtractTags(db *FlowDB, port uint16, k int) []analytics.TagScore {
	return analytics.ExtractTags(db, port, k)
}

// SpatialDiscovery runs Algorithm 2 for a domain name.
func SpatialDiscovery(db *FlowDB, odb *OrgDB, name string) *analytics.SpatialResult {
	return analytics.SpatialDiscovery(db, odb, name)
}

// TopDomainsOnOrg runs Algorithm 3 (content discovery) over a hosting
// organization, returning its top-k served domains by flow share.
//
// Deprecated: register NewTopContentQuery(org, odb, k) in a pipeline —
// one ObserveDB pass then feeds every registered query, and the same
// query runs incrementally under Engine.Serve. See the README's
// analytics migration table.
func TopDomainsOnOrg(db *FlowDB, odb *OrgDB, org string, k int) []analytics.ContentShare {
	return analytics.TopDomainsOnOrg(db, odb, org, k)
}
